//! # `bagcons-snap` — versioned binary snapshot container
//!
//! Sealed bags enter the system today through text parsing followed by a
//! full seal (sort + re-layout + packed-view rebuild). This crate is the
//! persistence format that skips all of it on the way back in: a
//! snapshot file stores each bag's columnar arena, multiplicity column,
//! and schema — plus the session's attribute-name table and, optionally,
//! the warm per-pair flows of a consistency stream — as length-prefixed,
//! 8-byte-aligned, content-hashed sections. Loading validates the header
//! and every section hash, then reconstructs [`Bag`]s by **bulk-moving**
//! the arena bytes through [`RowStore::from_sorted_rows`]: no
//! re-interning, no re-sorting. The sealed sorted-run invariant is
//! *checked* (one adjacent-pair pass doubles as the distinctness
//! certificate), never recomputed, and the packed view rebuilds lazily
//! exactly as after a live seal.
//!
//! Hand-rolled like `report::Json` — the build environment is offline,
//! so no serde.
//!
//! # Format (version 1)
//!
//! ```text
//! header   (32 B): magic "BAGSNAP1" · version u32 · section_count u32
//!                  · file_len u64 · table_hash u64
//! table    (section_count × 32 B): kind u32 · index u32 · offset u64
//!                  · len u64 · hash u64
//! payloads: 8-byte-aligned, zero-padded between sections
//! ```
//!
//! All integers are little-endian. `table_hash` covers the raw table
//! bytes; each entry's `hash` covers its payload bytes (padding
//! excluded). Hashes are a four-lane striped variant of the workspace
//! Fx hash (lane digests and the payload length folded through a final
//! Fx round) — deterministic across runs and thread counts, so
//! canonical bytes double as content identity, and wide enough to keep
//! load-time verification off the critical path.
//!
//! Section kinds: `META` (bag/pair counts + flags), per-bag `SCHEMA`
//! (attr ids, strictly ascending), `ARENA` (row-major values), `MULTS`
//! (dense multiplicity column — its length defines the row count),
//! `NAMES` (attribute display names), per-pair `FLOWS` (middle-edge
//! flow column of a feasible flow, in deterministic build order).
//!
//! Corruption never panics: truncation, bad magic, wrong version, and
//! flipped bytes all surface as typed [`SnapError`] variants, and the
//! structural decode runs only over hash-verified bytes with checked
//! arithmetic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use bagcons_core::hash::FxHasher;
use bagcons_core::{Attr, Bag, Relation, RowStore, Schema, Value};
use std::fmt;
use std::hash::Hasher;
use std::path::Path;

/// File magic: identifies a bagcons snapshot (any version).
pub const MAGIC: [u8; 8] = *b"BAGSNAP1";

/// Current format version. Readers reject other versions with
/// [`SnapError::UnsupportedVersion`]; new section kinds or layout
/// changes require a bump.
pub const VERSION: u32 = 1;

const HEADER_LEN: usize = 32;
const ENTRY_LEN: usize = 32;

/// Section kind tags (the `kind` field of a table entry).
mod kind {
    pub const META: u32 = 1;
    pub const SCHEMA: u32 = 2;
    pub const ARENA: u32 = 3;
    pub const MULTS: u32 = 4;
    pub const NAMES: u32 = 5;
    pub const FLOWS: u32 = 6;
}

fn kind_name(kind: u32) -> &'static str {
    match kind {
        kind::META => "meta",
        kind::SCHEMA => "schema",
        kind::ARENA => "arena",
        kind::MULTS => "mults",
        kind::NAMES => "names",
        kind::FLOWS => "flows",
        _ => "unknown",
    }
}

/// Typed snapshot failures. Every corruption mode maps onto one of
/// these; the loader never panics on untrusted bytes.
#[derive(Debug)]
pub enum SnapError {
    /// Underlying filesystem failure.
    Io(std::io::Error),
    /// The first eight bytes are not [`MAGIC`].
    BadMagic,
    /// The header names a version this reader does not speak.
    UnsupportedVersion(u32),
    /// The byte length on hand differs from what the header (or the
    /// minimum header size) requires — truncated or padded files.
    Truncated {
        /// Bytes the header requires.
        expected: u64,
        /// Bytes actually present.
        actual: u64,
    },
    /// A section's content hash does not match its table entry.
    HashMismatch {
        /// Section kind name (`"table"` for the section table itself).
        section: &'static str,
        /// The failing entry's index field.
        index: u32,
    },
    /// Hash-valid bytes that decode to an inconsistent structure.
    Malformed(&'static str),
    /// [`SnapshotWriter::add_bag`] was handed an unsealed bag.
    Unsealed,
}

impl fmt::Display for SnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapError::Io(e) => write!(f, "i/o error: {e}"),
            SnapError::BadMagic => write!(f, "not a bagcons snapshot (bad magic)"),
            SnapError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported snapshot version {v} (reader speaks {VERSION})"
                )
            }
            SnapError::Truncated { expected, actual } => {
                write!(
                    f,
                    "truncated snapshot: expected {expected} bytes, have {actual}"
                )
            }
            SnapError::HashMismatch { section, index } => {
                write!(
                    f,
                    "content hash mismatch in {section} section (index {index})"
                )
            }
            SnapError::Malformed(what) => write!(f, "malformed snapshot: {what}"),
            SnapError::Unsealed => write!(f, "cannot snapshot an unsealed bag"),
        }
    }
}

impl std::error::Error for SnapError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SnapError {
    fn from(e: std::io::Error) -> Self {
        SnapError::Io(e)
    }
}

/// Content hash of a payload: four interleaved Fx lanes over 32-byte
/// blocks (lane `k` hashes words `k, k+4, k+8, …`), the sub-block tail
/// hashed separately, then the lane digests and the payload length
/// folded through one final Fx round. The striping exists because a
/// single Fx chain is latency-bound (each step's rotate-xor-multiply
/// depends on the last); four independent chains let wide cores verify
/// multi-megabyte arenas at load time without dominating the open.
/// Deterministic across runs (the workspace hasher is unseeded).
///
/// Public because the section table and the [`frame`] wire protocol
/// share one hash: a byte string hashed by a snapshot writer verifies
/// identically after a trip through a pipe.
pub fn content_hash(bytes: &[u8]) -> u64 {
    let mut lanes = [0u64; 4];
    let mut blocks = bytes.chunks_exact(32);
    for block in &mut blocks {
        for (k, lane) in lanes.iter_mut().enumerate() {
            let word =
                u64::from_le_bytes(block[8 * k..8 * k + 8].try_into().expect("8-byte slice"));
            *lane = (lane.rotate_left(5) ^ word).wrapping_mul(FX_SEED);
        }
    }
    let mut tail = FxHasher::default();
    tail.write(blocks.remainder());
    let mut h = FxHasher::default();
    for lane in lanes {
        h.write_u64(lane);
    }
    h.write_u64(tail.finish());
    h.write_u64(bytes.len() as u64);
    h.finish()
}

/// The Fx multiplier (the workspace `FxHasher`'s constant), restated
/// here for the unrolled lane loop of [`content_hash`].
const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Bounds-checked little-endian reader over a verified payload.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or(SnapError::Malformed("section shorter than its contents"))?;
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, SnapError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4-byte slice")))
    }

    fn done(&self) -> bool {
        self.pos == self.bytes.len()
    }
}

/// True iff `bytes` begins with the snapshot magic — the sniff used by
/// `DatasetSource` auto-detection. A short or text file is simply "not
/// a snapshot", never an error.
pub fn looks_like_snapshot(bytes: &[u8]) -> bool {
    bytes.len() >= MAGIC.len() && bytes[..MAGIC.len()] == MAGIC
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

struct BagParts {
    attrs: Vec<Attr>,
    values: Vec<Value>,
    mults: Vec<u64>,
}

/// Serializes sealed bags (plus names and optional warm flows) into the
/// canonical snapshot byte string.
#[derive(Default)]
pub struct SnapshotWriter {
    bags: Vec<BagParts>,
    names: Vec<(Attr, String)>,
    flows: Option<Vec<Option<Vec<u64>>>>,
}

impl SnapshotWriter {
    /// An empty writer.
    pub fn new() -> Self {
        SnapshotWriter::default()
    }

    /// Appends a bag. The bag must be sealed: the format persists the
    /// sorted-run layout verbatim, and only a seal certifies it.
    pub fn add_bag(&mut self, bag: &Bag) -> Result<(), SnapError> {
        if !bag.is_sealed() {
            return Err(SnapError::Unsealed);
        }
        let rows = bag.store().len();
        self.bags.push(BagParts {
            attrs: bag.schema().attrs().to_vec(),
            values: bag.store().values().to_vec(),
            mults: (0..rows as u32).map(|i| bag.mult_of(i)).collect(),
        });
        Ok(())
    }

    /// Sets the attribute-name table (typically
    /// `NameInterner::entries()`), replacing any previous one.
    pub fn set_names(&mut self, names: Vec<(Attr, String)>) {
        self.names = names;
    }

    /// Sets the warm per-pair flow columns, in the lexicographic
    /// `i < j` pair order of a `ConsistencyStream`. `None` entries are
    /// pairs decided without a network (totals mismatch).
    pub fn set_flows(&mut self, flows: Vec<Option<Vec<u64>>>) {
        self.flows = Some(flows);
    }

    /// The canonical snapshot bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut sections: Vec<(u32, u32, Vec<u8>)> = Vec::new();

        let mut meta = Vec::with_capacity(16);
        push_u32(&mut meta, self.bags.len() as u32);
        let flags = if self.flows.is_some() { 1u32 } else { 0 };
        push_u32(&mut meta, flags);
        let pair_count = self.flows.as_ref().map_or(0, |f| f.len()) as u32;
        push_u32(&mut meta, pair_count);
        push_u32(&mut meta, 0); // reserved
        sections.push((kind::META, 0, meta));

        for (i, parts) in self.bags.iter().enumerate() {
            let mut schema = Vec::with_capacity(4 + 4 * parts.attrs.len());
            push_u32(&mut schema, parts.attrs.len() as u32);
            for a in &parts.attrs {
                push_u32(&mut schema, a.id());
            }
            sections.push((kind::SCHEMA, i as u32, schema));

            let mut arena = Vec::with_capacity(8 * parts.values.len());
            for v in &parts.values {
                push_u64(&mut arena, v.get());
            }
            sections.push((kind::ARENA, i as u32, arena));

            let mut mults = Vec::with_capacity(8 * parts.mults.len());
            for &m in &parts.mults {
                push_u64(&mut mults, m);
            }
            sections.push((kind::MULTS, i as u32, mults));
        }

        let mut names = Vec::new();
        push_u32(&mut names, self.names.len() as u32);
        for (attr, name) in &self.names {
            push_u32(&mut names, attr.id());
            push_u32(&mut names, name.len() as u32);
            names.extend_from_slice(name.as_bytes());
            while names.len() % 4 != 0 {
                names.push(0);
            }
        }
        sections.push((kind::NAMES, 0, names));

        if let Some(flows) = &self.flows {
            for (k, per_pair) in flows.iter().enumerate() {
                if let Some(column) = per_pair {
                    let mut payload = Vec::with_capacity(8 * column.len());
                    for &f in column {
                        push_u64(&mut payload, f);
                    }
                    sections.push((kind::FLOWS, k as u32, payload));
                }
            }
        }

        // Lay out: header · table · 8-aligned payloads.
        let table_len = sections.len() * ENTRY_LEN;
        let mut offset = (HEADER_LEN + table_len) as u64;
        let mut table = Vec::with_capacity(table_len);
        let mut offsets = Vec::with_capacity(sections.len());
        for (k, index, payload) in &sections {
            offset = (offset + 7) & !7;
            offsets.push(offset);
            push_u32(&mut table, *k);
            push_u32(&mut table, *index);
            push_u64(&mut table, offset);
            push_u64(&mut table, payload.len() as u64);
            push_u64(&mut table, content_hash(payload));
            offset += payload.len() as u64;
        }
        let file_len = offset;

        let mut out = Vec::with_capacity(file_len as usize);
        out.extend_from_slice(&MAGIC);
        push_u32(&mut out, VERSION);
        push_u32(&mut out, sections.len() as u32);
        push_u64(&mut out, file_len);
        push_u64(&mut out, content_hash(&table));
        out.extend_from_slice(&table);
        for ((_, _, payload), off) in sections.iter().zip(offsets) {
            out.resize(off as usize, 0);
            out.extend_from_slice(payload);
        }
        debug_assert_eq!(out.len() as u64, file_len);
        out
    }

    /// Writes the snapshot to `path`.
    pub fn write_file(&self, path: impl AsRef<Path>) -> Result<(), SnapError> {
        std::fs::write(path, self.to_bytes())?;
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------

/// One validated section-table entry.
#[derive(Debug, Clone, Copy)]
pub struct SectionInfo {
    /// Raw kind tag.
    pub kind: u32,
    /// Human-readable kind name (`"unknown"` for unrecognized tags).
    pub name: &'static str,
    /// Entry index (bag index for per-bag kinds, pair index for flows).
    pub index: u32,
    /// Payload offset from the start of the file.
    pub offset: u64,
    /// Payload length in bytes (padding excluded).
    pub len: u64,
    /// Recorded content hash.
    pub hash: u64,
}

/// Header-level description of a snapshot file.
#[derive(Debug, Clone)]
pub struct SnapInfo {
    /// Format version from the header.
    pub version: u32,
    /// Total file length from the header.
    pub file_len: u64,
    /// Number of bags recorded in the meta section.
    pub bag_count: u32,
    /// Number of stream pairs the flow sections describe (0 when no
    /// warm state is stored).
    pub pair_count: u32,
    /// Whether warm flow sections are present.
    pub has_flows: bool,
    /// The section table, in file order.
    pub sections: Vec<SectionInfo>,
}

/// Header + table validation shared by [`inspect`], [`verify`], and
/// [`Snapshot::from_bytes`]. Checks magic, version, length, table
/// bounds, and the table hash; per-payload hashes are the caller's
/// second pass.
fn read_table(bytes: &[u8]) -> Result<(u32, Vec<SectionInfo>), SnapError> {
    if bytes.len() < HEADER_LEN {
        return Err(SnapError::Truncated {
            expected: HEADER_LEN as u64,
            actual: bytes.len() as u64,
        });
    }
    if bytes[..8] != MAGIC {
        return Err(SnapError::BadMagic);
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4-byte slice"));
    if version != VERSION {
        return Err(SnapError::UnsupportedVersion(version));
    }
    let section_count = u32::from_le_bytes(bytes[12..16].try_into().expect("4-byte slice"));
    let file_len = u64::from_le_bytes(bytes[16..24].try_into().expect("8-byte slice"));
    if file_len != bytes.len() as u64 {
        return Err(SnapError::Truncated {
            expected: file_len,
            actual: bytes.len() as u64,
        });
    }
    let table_hash = u64::from_le_bytes(bytes[24..32].try_into().expect("8-byte slice"));
    let table_len = (section_count as usize)
        .checked_mul(ENTRY_LEN)
        .filter(|&t| HEADER_LEN + t <= bytes.len())
        .ok_or(SnapError::Malformed("section table out of bounds"))?;
    let table = &bytes[HEADER_LEN..HEADER_LEN + table_len];
    if content_hash(table) != table_hash {
        return Err(SnapError::HashMismatch {
            section: "table",
            index: 0,
        });
    }
    let mut sections = Vec::with_capacity(section_count as usize);
    for entry in table.chunks_exact(ENTRY_LEN) {
        let kind = u32::from_le_bytes(entry[0..4].try_into().expect("4-byte slice"));
        let index = u32::from_le_bytes(entry[4..8].try_into().expect("4-byte slice"));
        let offset = u64::from_le_bytes(entry[8..16].try_into().expect("8-byte slice"));
        let len = u64::from_le_bytes(entry[16..24].try_into().expect("8-byte slice"));
        let hash = u64::from_le_bytes(entry[24..32].try_into().expect("8-byte slice"));
        if offset % 8 != 0
            || offset < (HEADER_LEN + table_len) as u64
            || offset.checked_add(len).is_none_or(|end| end > file_len)
        {
            return Err(SnapError::Malformed("section payload out of bounds"));
        }
        sections.push(SectionInfo {
            kind,
            name: kind_name(kind),
            index,
            offset,
            len,
            hash,
        });
    }
    Ok((version, sections))
}

fn section_payload<'a>(bytes: &'a [u8], s: &SectionInfo) -> &'a [u8] {
    // Bounds were validated by `read_table`.
    &bytes[s.offset as usize..(s.offset + s.len) as usize]
}

fn decode_meta(sections: &[SectionInfo], bytes: &[u8]) -> Result<(u32, u32, bool), SnapError> {
    let mut meta = None;
    for s in sections {
        if s.kind == kind::META {
            if meta.is_some() {
                return Err(SnapError::Malformed("duplicate meta section"));
            }
            meta = Some(s);
        }
    }
    let meta = meta.ok_or(SnapError::Malformed("missing meta section"))?;
    let mut r = Reader::new(section_payload(bytes, meta));
    let bag_count = r.u32()?;
    let flags = r.u32()?;
    let pair_count = r.u32()?;
    let _reserved = r.u32()?;
    if !r.done() {
        return Err(SnapError::Malformed("oversized meta section"));
    }
    Ok((bag_count, pair_count, flags & 1 != 0))
}

fn snap_info(
    bytes: &[u8],
    version: u32,
    sections: Vec<SectionInfo>,
) -> Result<SnapInfo, SnapError> {
    let (bag_count, pair_count, has_flows) = decode_meta(&sections, bytes)?;
    Ok(SnapInfo {
        version,
        file_len: bytes.len() as u64,
        bag_count,
        pair_count,
        has_flows,
        sections,
    })
}

/// Validates the header and section table (bounds + table hash) and
/// reads the meta section — the cheap `snapshot info` pass. Payload
/// hashes and structure are **not** checked; use [`verify`] for that.
pub fn inspect(bytes: &[u8]) -> Result<SnapInfo, SnapError> {
    let (version, sections) = read_table(bytes)?;
    snap_info(bytes, version, sections)
}

/// Full validation: everything [`inspect`] checks, plus every payload
/// hash and a complete structural decode. Succeeds iff
/// [`Snapshot::from_bytes`] would.
pub fn verify(bytes: &[u8]) -> Result<SnapInfo, SnapError> {
    let snapshot = Snapshot::from_bytes(bytes)?;
    drop(snapshot);
    inspect(bytes)
}

/// A decoded snapshot: sealed bags, attribute names, and (optionally)
/// warm per-pair flow columns.
pub struct Snapshot {
    bags: Vec<Bag>,
    names: Vec<(Attr, String)>,
    flows: Option<Vec<Option<Vec<u64>>>>,
}

impl Snapshot {
    /// Reads and decodes the snapshot at `path`.
    pub fn open(path: impl AsRef<Path>) -> Result<Snapshot, SnapError> {
        let bytes = std::fs::read(path)?;
        Snapshot::from_bytes(&bytes)
    }

    /// Decodes a snapshot from bytes: header, table hash, per-section
    /// hashes, then structural decode — in that order, so corrupted
    /// bytes fail with the most specific [`SnapError`] available.
    pub fn from_bytes(bytes: &[u8]) -> Result<Snapshot, SnapError> {
        let (_, sections) = read_table(bytes)?;
        for s in &sections {
            if content_hash(section_payload(bytes, s)) != s.hash {
                return Err(SnapError::HashMismatch {
                    section: s.name,
                    index: s.index,
                });
            }
        }
        let (bag_count, pair_count, has_flows) = decode_meta(&sections, bytes)?;

        let n = bag_count as usize;
        let mut schemas: Vec<Option<Vec<Attr>>> = (0..n).map(|_| None).collect();
        let mut arenas: Vec<Option<Vec<Value>>> = (0..n).map(|_| None).collect();
        let mut mult_cols: Vec<Option<Vec<u64>>> = (0..n).map(|_| None).collect();
        let mut names: Option<Vec<(Attr, String)>> = None;
        let mut flows: Vec<Option<Vec<u64>>> = (0..pair_count as usize).map(|_| None).collect();

        for s in &sections {
            let payload = section_payload(bytes, s);
            match s.kind {
                kind::META => {}
                kind::SCHEMA => {
                    let slot = schemas
                        .get_mut(s.index as usize)
                        .ok_or(SnapError::Malformed("schema section for unknown bag"))?;
                    if slot.is_some() {
                        return Err(SnapError::Malformed("duplicate schema section"));
                    }
                    let mut r = Reader::new(payload);
                    let arity = r.u32()? as usize;
                    let mut attrs = Vec::with_capacity(arity);
                    for _ in 0..arity {
                        attrs.push(Attr::new(r.u32()?));
                    }
                    if !r.done() {
                        return Err(SnapError::Malformed("oversized schema section"));
                    }
                    if attrs.windows(2).any(|w| w[0] >= w[1]) {
                        return Err(SnapError::Malformed("schema attrs not strictly ascending"));
                    }
                    *slot = Some(attrs);
                }
                kind::ARENA => {
                    let slot = arenas
                        .get_mut(s.index as usize)
                        .ok_or(SnapError::Malformed("arena section for unknown bag"))?;
                    if slot.is_some() {
                        return Err(SnapError::Malformed("duplicate arena section"));
                    }
                    if payload.len() % 8 != 0 {
                        return Err(SnapError::Malformed("arena length not a multiple of 8"));
                    }
                    *slot = Some(
                        payload
                            .chunks_exact(8)
                            .map(|c| {
                                Value::new(u64::from_le_bytes(c.try_into().expect("8-byte chunk")))
                            })
                            .collect(),
                    );
                }
                kind::MULTS => {
                    let slot = mult_cols
                        .get_mut(s.index as usize)
                        .ok_or(SnapError::Malformed("mults section for unknown bag"))?;
                    if slot.is_some() {
                        return Err(SnapError::Malformed("duplicate mults section"));
                    }
                    if payload.len() % 8 != 0 {
                        return Err(SnapError::Malformed("mults length not a multiple of 8"));
                    }
                    *slot = Some(
                        payload
                            .chunks_exact(8)
                            .map(|c| u64::from_le_bytes(c.try_into().expect("8-byte chunk")))
                            .collect(),
                    );
                }
                kind::NAMES => {
                    if names.is_some() {
                        return Err(SnapError::Malformed("duplicate names section"));
                    }
                    let mut r = Reader::new(payload);
                    let count = r.u32()? as usize;
                    let mut table = Vec::with_capacity(count.min(1 << 16));
                    for _ in 0..count {
                        let attr = Attr::new(r.u32()?);
                        let len = r.u32()? as usize;
                        let raw = r.take(len)?;
                        let name = std::str::from_utf8(raw)
                            .map_err(|_| SnapError::Malformed("non-utf8 attribute name"))?
                            .to_string();
                        let pad = (4 - len % 4) % 4;
                        r.take(pad)?;
                        table.push((attr, name));
                    }
                    names = Some(table);
                }
                kind::FLOWS => {
                    if !has_flows {
                        return Err(SnapError::Malformed("flows section without flows flag"));
                    }
                    let slot = flows
                        .get_mut(s.index as usize)
                        .ok_or(SnapError::Malformed("flows section for unknown pair"))?;
                    if slot.is_some() {
                        return Err(SnapError::Malformed("duplicate flows section"));
                    }
                    if payload.len() % 8 != 0 {
                        return Err(SnapError::Malformed("flows length not a multiple of 8"));
                    }
                    *slot = Some(
                        payload
                            .chunks_exact(8)
                            .map(|c| u64::from_le_bytes(c.try_into().expect("8-byte chunk")))
                            .collect(),
                    );
                }
                _ => return Err(SnapError::Malformed("unknown section kind")),
            }
        }

        let mut bags = Vec::with_capacity(n);
        for i in 0..n {
            let attrs = schemas[i]
                .take()
                .ok_or(SnapError::Malformed("missing schema section"))?;
            let values = arenas[i]
                .take()
                .ok_or(SnapError::Malformed("missing arena section"))?;
            let mults = mult_cols[i]
                .take()
                .ok_or(SnapError::Malformed("missing mults section"))?;
            let arity = attrs.len();
            let rows = mults.len();
            if values.len()
                != rows
                    .checked_mul(arity)
                    .ok_or(SnapError::Malformed("arena size overflows"))?
            {
                return Err(SnapError::Malformed("arena/mults row count mismatch"));
            }
            let schema = Schema::from_attrs(attrs);
            let store = RowStore::from_sorted_rows(arity, rows, values)
                .ok_or(SnapError::Malformed("arena rows not strictly ascending"))?;
            let bag = Bag::from_sealed_parts(schema, store, mults)
                .ok_or(SnapError::Malformed("zero multiplicity in sealed column"))?;
            bags.push(bag);
        }

        Ok(Snapshot {
            bags,
            names: names.unwrap_or_default(),
            flows: if has_flows { Some(flows) } else { None },
        })
    }

    /// The decoded bags, in stored order. All are sealed.
    pub fn bags(&self) -> &[Bag] {
        &self.bags
    }

    /// The stored attribute-name bindings, sorted by attribute id.
    pub fn names(&self) -> &[(Attr, String)] {
        &self.names
    }

    /// The stored warm per-pair flow columns, if any.
    pub fn flows(&self) -> Option<&[Option<Vec<u64>>]> {
        self.flows.as_deref()
    }

    /// Decomposes into `(bags, names, flows)` without cloning.
    #[allow(clippy::type_complexity)]
    pub fn into_parts(self) -> (Vec<Bag>, Vec<(Attr, String)>, Option<Vec<Option<Vec<u64>>>>) {
        (self.bags, self.names, self.flows)
    }

    /// Reconstructs bag `i` as a [`Relation`] when every multiplicity
    /// is ≤ 1. Returns `None` for out-of-range indices or true bags.
    pub fn relation(&self, i: usize) -> Option<Relation> {
        let bag = self.bags.get(i)?;
        if !bag.is_relation() {
            return None;
        }
        Relation::from_sealed_store(bag.schema().clone(), bag.store().clone())
    }
}

// ---------------------------------------------------------------------
// Wire framing
// ---------------------------------------------------------------------

/// Length-prefixed, content-hashed message frames over byte streams —
/// the transport layer of the distributed pair-graph protocol
/// (`bagcons-dist`), reusing this crate's section encoding discipline
/// on a pipe instead of a file.
///
/// # Frame layout (version 1)
///
/// ```text
/// header  (24 B): magic "BAGWIRE1" · kind u32 · seq u32 · len u64
/// trailer  (8 B): hash u64            (striped content hash of payload)
/// payload (len B): immediately after the trailer, unpadded
/// ```
///
/// All integers are little-endian; `hash` is [`content_hash`], the same
/// four-lane striped Fx digest that guards snapshot sections, so a
/// snapshot byte string carried as a frame payload is covered twice —
/// once per section, once per frame — by one hash implementation.
/// Unlike file sections, frames are unpadded: pipes are byte streams
/// and alignment buys nothing there. `kind` is message-layer-defined
/// (readers treat unknown kinds as a protocol error, mirroring the
/// snapshot reader's unknown-section policy); `seq` is a free
/// correlation field. `len` above [`frame::MAX_FRAME`] is rejected
/// before any allocation, so a corrupt header cannot OOM the reader.
pub mod frame {
    use super::content_hash;
    use std::fmt;
    use std::io::{self, Read, Write};

    /// Frame magic: identifies one wire frame (any kind).
    pub const FRAME_MAGIC: [u8; 8] = *b"BAGWIRE1";

    /// Hard cap on a single frame's payload (1 GiB): a corrupted or
    /// hostile length field fails typed instead of allocating.
    pub const MAX_FRAME: u64 = 1 << 30;

    const FRAME_HEADER_LEN: usize = 32;

    /// One decoded frame.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct Frame {
        /// Message kind (defined by the layer above).
        pub kind: u32,
        /// Free correlation field (e.g. a pair id).
        pub seq: u32,
        /// The hash-verified payload bytes.
        pub payload: Vec<u8>,
    }

    /// Typed frame-read failures. `Io` covers the stream dying
    /// mid-frame (a killed worker); the rest are corruption.
    #[derive(Debug)]
    pub enum FrameError {
        /// Underlying stream failure or truncation mid-frame.
        Io(io::Error),
        /// The first eight bytes are not [`FRAME_MAGIC`].
        BadMagic,
        /// The header declares a payload larger than [`MAX_FRAME`].
        Oversize(u64),
        /// The payload does not match the header's striped hash.
        HashMismatch {
            /// The offending frame's kind field.
            kind: u32,
        },
    }

    impl fmt::Display for FrameError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                FrameError::Io(e) => write!(f, "frame i/o error: {e}"),
                FrameError::BadMagic => write!(f, "not a wire frame (bad magic)"),
                FrameError::Oversize(len) => {
                    write!(f, "frame payload of {len} bytes exceeds cap {MAX_FRAME}")
                }
                FrameError::HashMismatch { kind } => {
                    write!(f, "frame (kind {kind}) failed its content hash")
                }
            }
        }
    }

    impl std::error::Error for FrameError {}

    impl From<io::Error> for FrameError {
        fn from(e: io::Error) -> Self {
            FrameError::Io(e)
        }
    }

    /// Writes one frame: header, hash trailer, payload. One
    /// `write_all` per field keeps syscall count flat; callers flush
    /// when the conversation turn ends.
    pub fn write_frame(w: &mut impl Write, kind: u32, seq: u32, payload: &[u8]) -> io::Result<()> {
        let mut header = [0u8; FRAME_HEADER_LEN];
        header[..8].copy_from_slice(&FRAME_MAGIC);
        header[8..12].copy_from_slice(&kind.to_le_bytes());
        header[12..16].copy_from_slice(&seq.to_le_bytes());
        header[16..24].copy_from_slice(&(payload.len() as u64).to_le_bytes());
        header[24..32].copy_from_slice(&content_hash(payload).to_le_bytes());
        w.write_all(&header)?;
        w.write_all(payload)
    }

    /// Reads one frame. `Ok(None)` on clean EOF **at a frame boundary**
    /// (the peer closed after a complete message); EOF mid-frame is
    /// [`FrameError::Io`] with `UnexpectedEof` — how a killed worker
    /// surfaces to the coordinator.
    pub fn read_frame(r: &mut impl Read) -> Result<Option<Frame>, FrameError> {
        let mut header = [0u8; FRAME_HEADER_LEN];
        // Distinguish clean EOF (zero bytes) from a torn header.
        let mut got = 0;
        while got < FRAME_HEADER_LEN {
            match r.read(&mut header[got..])? {
                0 if got == 0 => return Ok(None),
                0 => {
                    return Err(FrameError::Io(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "stream closed mid-frame-header",
                    )))
                }
                n => got += n,
            }
        }
        if header[..8] != FRAME_MAGIC {
            return Err(FrameError::BadMagic);
        }
        let kind = u32::from_le_bytes(header[8..12].try_into().expect("4-byte slice"));
        let seq = u32::from_le_bytes(header[12..16].try_into().expect("4-byte slice"));
        let len = u64::from_le_bytes(header[16..24].try_into().expect("8-byte slice"));
        let hash = u64::from_le_bytes(header[24..32].try_into().expect("8-byte slice"));
        if len > MAX_FRAME {
            return Err(FrameError::Oversize(len));
        }
        let mut payload = vec![0u8; len as usize];
        r.read_exact(&mut payload)?;
        if content_hash(&payload) != hash {
            return Err(FrameError::HashMismatch { kind });
        }
        Ok(Some(Frame { kind, seq, payload }))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn frames_round_trip() {
            let mut buf = Vec::new();
            write_frame(&mut buf, 3, 7, b"hello").unwrap();
            write_frame(&mut buf, 4, 0, b"").unwrap();
            let mut r = &buf[..];
            let a = read_frame(&mut r).unwrap().unwrap();
            assert_eq!((a.kind, a.seq, a.payload.as_slice()), (3, 7, &b"hello"[..]));
            let b = read_frame(&mut r).unwrap().unwrap();
            assert_eq!((b.kind, b.seq, b.payload.len()), (4, 0, 0));
            assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF");
        }

        #[test]
        fn torn_and_corrupt_frames_fail_typed() {
            let mut buf = Vec::new();
            write_frame(&mut buf, 1, 0, b"payload").unwrap();
            // Truncated mid-payload: a killed peer.
            let mut torn = &buf[..buf.len() - 3];
            assert!(matches!(read_frame(&mut torn), Err(FrameError::Io(_))));
            // Truncated mid-header.
            let mut torn = &buf[..10];
            assert!(matches!(read_frame(&mut torn), Err(FrameError::Io(_))));
            // Flipped payload byte: hash mismatch.
            let mut flipped = buf.clone();
            let last = flipped.len() - 1;
            flipped[last] ^= 0x40;
            assert!(matches!(
                read_frame(&mut &flipped[..]),
                Err(FrameError::HashMismatch { kind: 1 })
            ));
            // Wrong magic.
            let mut bad = buf.clone();
            bad[0] = b'X';
            assert!(matches!(
                read_frame(&mut &bad[..]),
                Err(FrameError::BadMagic)
            ));
            // Oversize length field fails before allocating.
            let mut huge = buf;
            huge[16..24].copy_from_slice(&(MAX_FRAME + 1).to_le_bytes());
            assert!(matches!(
                read_frame(&mut &huge[..]),
                Err(FrameError::Oversize(_))
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bagcons_core::Schema;

    fn sample_bag() -> Bag {
        let schema = Schema::from_attrs([Attr::new(0), Attr::new(1)]);
        let rows: &[(&[u64], u64)] = &[(&[0, 0], 2), (&[0, 7], 1), (&[1, 1], 3)];
        let mut bag = Bag::new(schema);
        for (row, m) in rows {
            let vals: Vec<Value> = row.iter().copied().map(Value::new).collect();
            bag.insert(&vals[..], *m).unwrap();
        }
        bag.seal();
        bag
    }

    fn sample_bytes() -> Vec<u8> {
        let mut w = SnapshotWriter::new();
        w.add_bag(&sample_bag()).unwrap();
        w.set_names(vec![
            (Attr::new(0), "A0".into()),
            (Attr::new(1), "city".into()),
        ]);
        w.to_bytes()
    }

    #[test]
    fn round_trip_single_bag() {
        let original = sample_bag();
        let bytes = sample_bytes();
        assert!(looks_like_snapshot(&bytes));
        let snap = Snapshot::from_bytes(&bytes).unwrap();
        assert_eq!(snap.bags().len(), 1);
        let loaded = &snap.bags()[0];
        assert!(loaded.is_sealed());
        assert_eq!(loaded, &original);
        assert_eq!(loaded.store().values(), original.store().values());
        assert_eq!(snap.names().len(), 2);
        assert_eq!(snap.names()[1].1, "city");
    }

    #[test]
    fn canonical_bytes_are_deterministic() {
        assert_eq!(sample_bytes(), sample_bytes());
    }

    #[test]
    fn rejects_unsealed() {
        let mut bag = sample_bag();
        bag.insert(&[Value::new(0), Value::new(3)][..], 1).unwrap();
        assert!(!bag.is_sealed());
        let mut w = SnapshotWriter::new();
        assert!(matches!(w.add_bag(&bag), Err(SnapError::Unsealed)));
    }

    #[test]
    fn bad_magic_and_truncation() {
        let bytes = sample_bytes();
        let mut flipped = bytes.clone();
        flipped[0] ^= 0xFF;
        assert!(matches!(
            Snapshot::from_bytes(&flipped),
            Err(SnapError::BadMagic)
        ));
        assert!(matches!(
            Snapshot::from_bytes(&bytes[..bytes.len() - 1]),
            Err(SnapError::Truncated { .. })
        ));
        assert!(matches!(
            Snapshot::from_bytes(&bytes[..16]),
            Err(SnapError::Truncated { .. })
        ));
        assert!(matches!(
            Snapshot::from_bytes(&[]),
            Err(SnapError::Truncated { .. })
        ));
    }

    #[test]
    fn wrong_version() {
        let mut bytes = sample_bytes();
        bytes[8] = 9;
        assert!(matches!(
            Snapshot::from_bytes(&bytes),
            Err(SnapError::UnsupportedVersion(9))
        ));
    }

    #[test]
    fn flipped_payload_byte_is_detected() {
        let bytes = sample_bytes();
        let info = inspect(&bytes).unwrap();
        let arena = info
            .sections
            .iter()
            .find(|s| s.kind == kind::ARENA)
            .unwrap();
        let mut flipped = bytes.clone();
        flipped[arena.offset as usize] ^= 0x01;
        assert!(matches!(
            Snapshot::from_bytes(&flipped),
            Err(SnapError::HashMismatch {
                section: "arena",
                ..
            })
        ));
    }

    #[test]
    fn inspect_and_verify() {
        let bytes = sample_bytes();
        let info = verify(&bytes).unwrap();
        assert_eq!(info.version, VERSION);
        assert_eq!(info.bag_count, 1);
        assert!(!info.has_flows);
        // meta + schema + arena + mults + names
        assert_eq!(info.sections.len(), 5);
        assert!(info.sections.iter().all(|s| s.offset % 8 == 0));
    }

    #[test]
    fn flows_round_trip() {
        let mut w = SnapshotWriter::new();
        w.add_bag(&sample_bag()).unwrap();
        w.add_bag(&sample_bag()).unwrap();
        w.set_flows(vec![Some(vec![1, 2, 3]), None]);
        let bytes = w.to_bytes();
        let snap = Snapshot::from_bytes(&bytes).unwrap();
        let flows = snap.flows().unwrap();
        assert_eq!(flows.len(), 2);
        assert_eq!(flows[0].as_deref(), Some(&[1u64, 2, 3][..]));
        assert!(flows[1].is_none());
    }

    #[test]
    fn empty_bag_round_trips() {
        let bag = {
            let mut b = Bag::new(Schema::from_attrs([Attr::new(5)]));
            b.seal();
            b
        };
        let mut w = SnapshotWriter::new();
        w.add_bag(&bag).unwrap();
        let snap = Snapshot::from_bytes(&w.to_bytes()).unwrap();
        assert_eq!(&snap.bags()[0], &bag);
        assert!(snap.bags()[0].is_empty());
    }

    #[test]
    fn relation_reconstruction() {
        let mut bag = Bag::new(Schema::from_attrs([Attr::new(0)]));
        bag.insert(&[Value::new(4)][..], 1).unwrap();
        bag.insert(&[Value::new(2)][..], 1).unwrap();
        bag.seal();
        let mut w = SnapshotWriter::new();
        w.add_bag(&bag).unwrap();
        let snap = Snapshot::from_bytes(&w.to_bytes()).unwrap();
        let rel = snap.relation(0).unwrap();
        assert_eq!(rel.len(), 2);
    }
}
