//! Shard-partitioned parallel execution over sealed columnar runs.
//!
//! The consistency pipeline (bag joins → marginals → flow-network
//! construction) is embarrassingly parallel over **key ranges**: a sealed
//! value's lexicographic run partitions into contiguous shards whose
//! boundaries fall on join-key-group edges, so no group straddles a shard
//! and per-shard outputs concatenate into exactly the sequential result.
//! This module provides the three pieces every parallel hot path shares:
//!
//! * [`ExecConfig`] — thread count and the sequential-fallback threshold.
//!   `threads = 1` (or a support below [`ExecConfig::min_parallel_support`])
//!   routes callers through their unchanged sequential code path, so the
//!   parallel layer costs nothing when it cannot help.
//! * [`shard_ranges`] — the shard plan: split `0..n` into contiguous
//!   ranges, moving every boundary forward to the next key-group edge.
//!   Plans are **oversubscribed** ([`ExecConfig::shards_for`] asks for
//!   [`ExecConfig::CHUNKS_PER_WORKER`] chunks per worker), so a skewed
//!   plan leaves chunks for idle workers to steal.
//! * [`run_shards`] / [`run_tasks`] — a dependency-free **work-stealing
//!   executor** on [`std::thread::scope`] (the build environment is
//!   offline; no rayon): an atomic cursor walks the shard descriptors
//!   and each worker claims the next unclaimed chunk whenever it
//!   finishes one, so one expensive shard no longer idles every other
//!   worker. Results are tagged with their task index and returned in
//!   task order regardless of completion order — the splice invariant
//!   below survives any interleaving.
//!
//! Workers assemble their output into [`ShardRun`]s: flat row-major
//! buffers with **precomputed row hashes** and a parallel `u64` payload
//! column (multiplicities or edge capacities). The splice back into one
//! [`RowStore`] ([`ShardedRowStore::into_store`]) then memcpys row data
//! and inserts dedup-table slots without rehashing — the only sequential
//! work left on the output side is the flat-table probe.

use crate::cancel::Deadline;
use crate::store::{hash_row, RowStore};
use crate::{CoreError, Value};
use std::fmt;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering as AtomicOrdering};
use std::sync::Mutex;

/// Configuration for shard-parallel execution.
///
/// Constructed through [`ExecConfig::builder`] (which validates
/// `threads >= 1` and `min_parallel_support >= 1` once, at build time) or
/// the const shorthands [`ExecConfig::sequential`] /
/// [`ExecConfig::with_threads`]. The fields are private so every value in
/// circulation satisfies those invariants; benchmarks and property tests
/// force sharding on tiny inputs via
/// `ExecConfig::builder().threads(4).min_parallel_support(1).build()`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExecConfig {
    /// Maximum worker threads (and shards) per parallel operation.
    /// `1` disables parallelism entirely. Invariant: `>= 1`.
    pub(crate) threads: usize,
    /// Inputs with fewer items than this run sequentially even when
    /// `threads > 1`: below it, thread spawn + splice overhead outweighs
    /// the per-shard work. Invariant: `>= 1`.
    pub(crate) min_parallel_support: usize,
    /// Cooperative abort condition, polled by [`try_run_tasks`] at every
    /// chunk claim (and by the phase/node/pair-granular poll sites
    /// downstream). [`Deadline::NONE`] — the default — never fires and
    /// costs two `Option` tests per poll. `Clone`, not `Copy`: the
    /// deadline may carry an `Arc`'d [`crate::CancelToken`].
    pub(crate) deadline: Deadline,
}

impl ExecConfig {
    /// Default sequential-fallback threshold (items per operation).
    pub const DEFAULT_MIN_PARALLEL_SUPPORT: usize = 2048;

    /// Shard-plan oversubscription: how many chunks each worker's share
    /// of the input is split into. More chunks give the work-stealing
    /// executor room to rebalance a skewed plan (one giant key group
    /// next to many tiny ones) at the cost of slightly more splice
    /// bookkeeping; 4 keeps the per-chunk work large enough that the
    /// atomic-cursor claim is noise.
    pub const CHUNKS_PER_WORKER: usize = 4;

    /// Starts building a configuration; unset knobs take the defaults of
    /// [`ExecConfig::default`].
    pub fn builder() -> ExecConfigBuilder {
        ExecConfigBuilder::new()
    }

    /// Maximum worker threads (and shards) per parallel operation.
    pub const fn threads(&self) -> usize {
        self.threads
    }

    /// The sequential-fallback threshold: inputs with fewer items run
    /// sequentially even when `threads() > 1`.
    pub const fn min_parallel_support(&self) -> usize {
        self.min_parallel_support
    }

    /// The abort condition governing operations run under this
    /// configuration ([`Deadline::NONE`] unless set).
    pub const fn deadline(&self) -> &Deadline {
        &self.deadline
    }

    /// Returns the configuration with `deadline` as its abort condition
    /// — how [`Deadline`]s thread into the `*_with` entry points without
    /// new parameters. The sizing knobs are untouched.
    pub fn with_deadline(mut self, deadline: Deadline) -> Self {
        self.deadline = deadline;
        self
    }

    /// A strictly sequential configuration: every `*_with` entry point
    /// takes its unchanged single-threaded code path.
    pub const fn sequential() -> Self {
        ExecConfig {
            threads: 1,
            min_parallel_support: Self::DEFAULT_MIN_PARALLEL_SUPPORT,
            deadline: Deadline::NONE,
        }
    }

    /// `threads` workers with the default sequential-fallback threshold.
    ///
    /// # Panics
    ///
    /// Panics on `threads == 0` — the same invariant
    /// [`ExecConfigBuilder::build`] reports as [`CoreError::InvalidConfig`];
    /// use the builder when the count is untrusted.
    pub const fn with_threads(threads: usize) -> Self {
        assert!(threads >= 1, "threads must be >= 1");
        ExecConfig {
            threads,
            min_parallel_support: Self::DEFAULT_MIN_PARALLEL_SUPPORT,
            deadline: Deadline::NONE,
        }
    }

    /// How many shards an input of `items` rows should split into: `1`
    /// (sequential) below the parallel threshold or at `threads = 1`,
    /// otherwise [`ExecConfig::CHUNKS_PER_WORKER`] chunks per configured
    /// worker — oversubscribed so the work-stealing executor can
    /// rebalance skewed plans. (A 0/1-row input never shards, whatever
    /// the threshold; [`shard_ranges`] caps the plan at one shard per
    /// item, so tiny inputs cannot produce empty shards.)
    pub fn shards_for(&self, items: usize) -> usize {
        if self.threads <= 1 || items < self.min_parallel_support.max(2) {
            1
        } else {
            self.threads.saturating_mul(Self::CHUNKS_PER_WORKER)
        }
    }
}

impl Default for ExecConfig {
    /// One worker per available hardware thread (capped at 8 — the hot
    /// paths are memory-bound well before that on current parts).
    fn default() -> Self {
        ExecConfig::builder()
            .build()
            .expect("default ExecConfig is valid")
    }
}

impl fmt::Display for ExecConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.threads == 1 {
            write!(f, "sequential")
        } else {
            write!(
                f,
                "{} threads (sequential below {} rows)",
                self.threads, self.min_parallel_support
            )
        }
    }
}

/// Builder for [`ExecConfig`]; see [`ExecConfig::builder`].
///
/// Validation happens once in [`ExecConfigBuilder::build`] — the
/// executors and shard planners downstream can rely on `threads >= 1`
/// and `min_parallel_support >= 1` instead of re-checking per call.
#[derive(Clone, Debug)]
pub struct ExecConfigBuilder {
    threads: Option<usize>,
    min_parallel_support: usize,
    deadline: Deadline,
}

impl ExecConfigBuilder {
    fn new() -> Self {
        ExecConfigBuilder {
            threads: None,
            min_parallel_support: ExecConfig::DEFAULT_MIN_PARALLEL_SUPPORT,
            deadline: Deadline::NONE,
        }
    }

    /// Sets the worker-thread cap. Unset, it defaults to one worker per
    /// available hardware thread (capped at 8).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Sets the sequential-fallback threshold
    /// ([`ExecConfig::DEFAULT_MIN_PARALLEL_SUPPORT`] when unset).
    pub fn min_parallel_support(mut self, items: usize) -> Self {
        self.min_parallel_support = items;
        self
    }

    /// Sets the abort condition ([`Deadline::NONE`] when unset).
    pub fn deadline(mut self, deadline: Deadline) -> Self {
        self.deadline = deadline;
        self
    }

    /// Validates and builds: `threads >= 1`, `min_parallel_support >= 1`.
    pub fn build(self) -> Result<ExecConfig, CoreError> {
        let threads = self.threads.unwrap_or_else(default_threads);
        if threads == 0 {
            return Err(CoreError::InvalidConfig("threads must be >= 1"));
        }
        if self.min_parallel_support == 0 {
            return Err(CoreError::InvalidConfig(
                "min_parallel_support must be >= 1",
            ));
        }
        Ok(ExecConfig {
            threads,
            min_parallel_support: self.min_parallel_support,
            deadline: self.deadline,
        })
    }
}

/// Hardware thread count used by [`ExecConfig::default`], cached so the
/// legacy convenience entry points can construct default configs in tight
/// loops without re-querying the OS.
fn default_threads() -> usize {
    static CACHED: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *CACHED.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(8)
    })
}

/// Splits `0..n` into at most `shards` contiguous, non-empty ranges whose
/// boundaries never split a key group.
///
/// `same_group(p)` reports whether position `p` belongs to the same key
/// group as position `p - 1` (callers compare adjacent keys; `p` is always
/// in `1..n`). Each tentative boundary `n·i/shards` moves **forward** to
/// the next group edge, so a single giant group simply collapses the
/// shards it swallows (possibly down to one), and duplicate boundaries
/// (empty shards) are dropped rather than handed to workers.
pub fn shard_ranges(
    n: usize,
    shards: usize,
    mut same_group: impl FnMut(usize) -> bool,
) -> Vec<Range<usize>> {
    if n == 0 {
        return Vec::new();
    }
    let shards = shards.max(1).min(n);
    let mut ranges = Vec::with_capacity(shards);
    let mut start = 0usize;
    for i in 1..shards {
        let mut b = (n * i) / shards;
        while b < n && b > 0 && same_group(b) {
            b += 1;
        }
        if b > start && b < n {
            ranges.push(start..b);
            start = b;
        }
    }
    ranges.push(start..n);
    ranges
}

/// The shard plan for a merge over two key-sorted sides: shards
/// `0..left_len` at key-group boundaries ([`shard_ranges`] semantics for
/// `same_group`) and aligns each left range with its matching right
/// range. `right_lower_bound(p)` must return the first right position
/// whose key is `>=` the key at left position `p` (`p < left_len`); with
/// that, every matching pair lands in exactly one task and task outputs
/// concatenate in ascending key order.
pub fn aligned_shard_tasks(
    left_len: usize,
    right_len: usize,
    shards: usize,
    same_group: impl FnMut(usize) -> bool,
    right_lower_bound: impl Fn(usize) -> usize,
) -> Vec<(Range<usize>, Range<usize>)> {
    shard_ranges(left_len, shards, same_group)
        .into_iter()
        .map(|lr| {
            let r_lo = right_lower_bound(lr.start);
            let r_hi = if lr.end == left_len {
                right_len
            } else {
                right_lower_bound(lr.end)
            };
            (lr, r_lo..r_hi)
        })
        .collect()
}

/// First position in `0..n` where the monotone predicate `is_less`
/// (true, then false) turns false — the lower-bound binary search shared
/// by the shard aligners.
pub fn lower_bound_by(n: usize, is_less: impl Fn(usize) -> bool) -> usize {
    let (mut lo, mut hi) = (0usize, n);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if is_less(mid) {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

/// Runs `work` over each range on at most `threads` scoped worker
/// threads through the work-stealing queue of [`run_tasks`], returning
/// outputs in shard order. Specialization of [`run_tasks`] for the
/// common range-per-shard case.
pub fn run_shards<T: Send>(
    threads: usize,
    ranges: Vec<Range<usize>>,
    work: impl Fn(Range<usize>) -> T + Sync,
) -> Vec<T> {
    run_tasks(threads, ranges, work)
}

/// [`try_run_tasks`] for the common range-per-shard case.
pub fn try_run_shards<T: Send>(
    cfg: &ExecConfig,
    ranges: Vec<Range<usize>>,
    work: impl Fn(Range<usize>) -> T + Sync,
) -> Result<Vec<T>, CoreError> {
    try_run_tasks(cfg, ranges, work)
}

/// Extracts a human-readable message from a caught panic payload.
pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Ok(s) = payload.downcast::<String>() {
        *s
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs `work` over each task on at most `threads` scoped worker
/// threads, returning outputs in task order.
///
/// The **ungoverned** executor: no deadline is polled, and a worker
/// panic is re-raised on the caller — with the failing task's index
/// attached to the payload (`"worker task {i} panicked: {message}"`), so
/// a shard panic is attributable even on this path. Bulk operations that
/// can surface a typed error use [`try_run_tasks`] instead; this entry
/// point remains for infallible internals (e.g. [`parallel_sort_by`])
/// whose callers treat a panic as a bug.
pub fn run_tasks<I: Send, T: Send>(
    threads: usize,
    tasks: Vec<I>,
    work: impl Fn(I) -> T + Sync,
) -> Vec<T> {
    match run_tasks_impl(threads, &Deadline::NONE, tasks, work) {
        Ok(out) => out,
        // Attach the task identity; the original payload's message rides
        // along. (Aborted cannot happen under Deadline::NONE.)
        Err(e) => panic!("{e}"),
    }
}

/// Runs `work` over each task on `cfg`'s workers with **governance**:
/// the executor polls `cfg`'s [`Deadline`] at every chunk claim and
/// contains worker panics, so the call either returns every output in
/// task order or a typed error — it never hangs past a poll site and
/// never unwinds through the caller.
///
/// The tasks form a **self-scheduling work queue**: an atomic cursor
/// indexes the task list, and each worker claims the next unclaimed
/// task whenever it finishes one. No task-to-worker assignment is fixed
/// up front, so a skewed plan (one chunk much more expensive than the
/// rest) keeps every worker busy until the queue drains. Each output is
/// written into the slot of its task index, so the returned vector is
/// in task order regardless of which worker finished which task when;
/// splice-order invariants downstream are unaffected by scheduling.
///
/// With one task (or `threads <= 1`) the work runs inline on the
/// calling thread — the sequential fallback spawns nothing, but is
/// governed all the same (deadline poll between tasks, panic caught).
///
/// # Errors
///
/// * [`CoreError::Aborted`] — the deadline fired at a chunk boundary;
///   remaining chunks were abandoned (in-flight chunks finish first).
/// * [`CoreError::WorkerPanicked`] — a task body panicked; the panic was
///   caught on the worker, sibling chunks were cancelled, and the error
///   names the failing task. Callers own their state: nothing is spliced
///   on the error path, so operands stay untouched.
pub fn try_run_tasks<I: Send, T: Send>(
    cfg: &ExecConfig,
    tasks: Vec<I>,
    work: impl Fn(I) -> T + Sync,
) -> Result<Vec<T>, CoreError> {
    run_tasks_impl(cfg.threads, &cfg.deadline, tasks, work)
}

fn run_tasks_impl<I: Send, T: Send>(
    threads: usize,
    deadline: &Deadline,
    tasks: Vec<I>,
    work: impl Fn(I) -> T + Sync,
) -> Result<Vec<T>, CoreError> {
    if threads <= 1 || tasks.len() <= 1 {
        let mut out = Vec::with_capacity(tasks.len());
        for (i, task) in tasks.into_iter().enumerate() {
            if let Some(reason) = deadline.poll() {
                return Err(CoreError::Aborted(reason));
            }
            match catch_unwind(AssertUnwindSafe(|| work(task))) {
                Ok(v) => out.push(v),
                Err(payload) => {
                    return Err(CoreError::WorkerPanicked {
                        task: i,
                        message: panic_message(payload),
                    })
                }
            }
        }
        return Ok(out);
    }
    let n = tasks.len();
    let workers = threads.min(n);
    // Slot-per-task queue and result stores. The mutexes are touched
    // exactly once per slot (claim on the way in, write on the way
    // out); cross-task contention lives only on the atomic cursor.
    let queue: Vec<Mutex<Option<I>>> = tasks.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    // Containment state: `halt` tells sibling workers to stop claiming
    // chunks; `failure` records what went wrong (a panic beats an abort
    // — it is the more specific diagnosis, and an abort may only be the
    // injected side effect of the panic's cleanup).
    let halt = AtomicBool::new(false);
    let failure: Mutex<Option<CoreError>> = Mutex::new(None);
    let record = |err: CoreError| {
        halt.store(true, AtomicOrdering::Relaxed);
        if let Ok(mut slot) = failure.lock() {
            let replace = matches!(
                (&*slot, &err),
                (None, _)
                    | (
                        Some(CoreError::Aborted(_)),
                        CoreError::WorkerPanicked { .. }
                    )
            );
            if replace {
                *slot = Some(err);
            }
        }
    };
    let (queue_ref, slots_ref, cursor_ref, work_ref) = (&queue, &slots, &cursor, &work);
    let (halt_ref, record_ref) = (&halt, &record);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let (queue, slots, cursor, work) = (queue_ref, slots_ref, cursor_ref, work_ref);
                let (halt, record) = (halt_ref, record_ref);
                scope.spawn(move || {
                    loop {
                        if halt.load(AtomicOrdering::Relaxed) {
                            break;
                        }
                        if let Some(reason) = deadline.poll() {
                            record(CoreError::Aborted(reason));
                            break;
                        }
                        let i = cursor.fetch_add(1, AtomicOrdering::Relaxed);
                        if i >= n {
                            break;
                        }
                        // The cursor hands each index to exactly one
                        // worker, so the take always finds the task.
                        let task = queue[i]
                            .lock()
                            .expect("claiming worker cannot observe a poisoned task slot")
                            .take()
                            .expect("task claimed twice");
                        match catch_unwind(AssertUnwindSafe(|| work(task))) {
                            Ok(out) => {
                                *slots[i].lock().expect(
                                    "finishing worker cannot observe a poisoned result slot",
                                ) = Some(out);
                            }
                            Err(payload) => {
                                record(CoreError::WorkerPanicked {
                                    task: i,
                                    message: panic_message(payload),
                                });
                                break;
                            }
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join()
                .expect("worker panics are contained by catch_unwind");
        }
    });
    if let Ok(mut slot) = failure.lock() {
        if let Some(err) = slot.take() {
            return Err(err);
        }
    }
    Ok(slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result mutexes are uncontended after the join")
                .expect("every task completed on the success path")
        })
        .collect())
}

/// Parallel merge sort over the work-stealing executor: `items` splits
/// into `shards` contiguous chunks, each chunk sorts on the task queue,
/// and sorted runs then merge pairwise — also on the queue — until one
/// remains. This is the sort half of the parallel seal
/// ([`crate::Bag::seal_with`] / [`crate::Relation::seal_with`]).
///
/// With `threads <= 1` or `shards <= 1` the whole thing is one inline
/// `sort_unstable_by`. Elements that compare equal keep their
/// earlier-chunk-first order but an unspecified within-chunk order (the
/// chunk sorts are unstable); the seal callers compare interned — hence
/// distinct — rows, so ties cannot occur there.
pub fn parallel_sort_by<T: Send + Copy>(
    items: Vec<T>,
    threads: usize,
    shards: usize,
    cmp: impl Fn(&T, &T) -> std::cmp::Ordering + Sync,
) -> Vec<T> {
    let n = items.len();
    if threads <= 1 || shards <= 1 || n < 2 {
        let mut items = items;
        items.sort_unstable_by(&cmp);
        return items;
    }
    let shards = shards.min(n);
    let chunk = n.div_ceil(shards);
    let mut rest = items;
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(shards);
    while rest.len() > chunk {
        let tail = rest.split_off(chunk);
        chunks.push(std::mem::replace(&mut rest, tail));
    }
    chunks.push(rest);
    let cmp = &cmp;
    let mut runs: Vec<Vec<T>> = run_tasks(threads, chunks, |mut c| {
        c.sort_unstable_by(cmp);
        c
    });
    while runs.len() > 1 {
        let mut pairs: Vec<(Vec<T>, Option<Vec<T>>)> = Vec::with_capacity(runs.len().div_ceil(2));
        let mut it = runs.into_iter();
        while let Some(a) = it.next() {
            pairs.push((a, it.next()));
        }
        runs = run_tasks(threads, pairs, |(a, b)| match b {
            Some(b) => merge_sorted_runs(a, b, cmp),
            None => a,
        });
    }
    runs.pop().unwrap_or_default()
}

/// Length-ratio threshold above which the merge hot loops switch from
/// linear stepping to galloping (exponential search): when one side is
/// at least this many times longer than the other, long stretches of the
/// long side sort consecutively and a gallop finds each stretch's end in
/// `O(log run)` compares instead of `O(run)`.
pub const GALLOP_RATIO: usize = 8;

/// First position in `lo..hi` where the monotone predicate `keep`
/// (true, then false) turns false, found by exponential probing from
/// `lo` followed by a binary search of the last doubling window — the
/// gallop step shared by the skewed-merge hot loops. `O(log d)` compares
/// for an answer `d` past `lo`, against `O(d)` for a linear scan, and
/// **exactly** the same answer: callers swap it in without changing
/// emission order.
pub fn gallop_bound(lo: usize, hi: usize, keep: impl Fn(usize) -> bool) -> usize {
    if lo >= hi || !keep(lo) {
        return lo;
    }
    let mut step = 1usize;
    let mut last = lo;
    while last + step < hi && keep(last + step) {
        last += step;
        step <<= 1;
    }
    // keep(last) is true and keep(last + step) is false (or out of
    // range); binary-search the remaining open window.
    let upper = last.saturating_add(step).min(hi);
    last + 1 + lower_bound_by(upper - last - 1, |off| keep(last + 1 + off))
}

/// Two-way merge of sorted runs; ties take from `a` first. Skewed pairs
/// (length ratio ≥ [`GALLOP_RATIO`]) advance through the long side by
/// galloping; the output is bit-identical to the linear merge either way.
fn merge_sorted_runs<T: Copy>(
    a: Vec<T>,
    b: Vec<T>,
    cmp: impl Fn(&T, &T) -> std::cmp::Ordering,
) -> Vec<T> {
    let gallop =
        a.len() >= GALLOP_RATIO * b.len().max(1) || b.len() >= GALLOP_RATIO * a.len().max(1);
    merge_sorted_runs_impl(a, b, cmp, gallop)
}

fn merge_sorted_runs_impl<T: Copy>(
    a: Vec<T>,
    b: Vec<T>,
    cmp: impl Fn(&T, &T) -> std::cmp::Ordering,
    gallop: bool,
) -> Vec<T> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if gallop {
            // Bulk-take the stretch of `a` that sorts before (or ties
            // with) b[j] — ties still come from `a` first, exactly as in
            // the linear loop — then the stretch of `b` strictly before
            // a[i].
            let ai = gallop_bound(i, a.len(), |p| {
                cmp(&a[p], &b[j]) != std::cmp::Ordering::Greater
            });
            out.extend_from_slice(&a[i..ai]);
            i = ai;
            if i >= a.len() {
                break;
            }
            let bj = gallop_bound(j, b.len(), |p| {
                cmp(&a[i], &b[p]) == std::cmp::Ordering::Greater
            });
            out.extend_from_slice(&b[j..bj]);
            j = bj;
        } else if cmp(&a[i], &b[j]) != std::cmp::Ordering::Greater {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

#[doc(hidden)]
pub fn merge_sorted_runs_for_bench<T: Copy>(
    a: Vec<T>,
    b: Vec<T>,
    cmp: impl Fn(&T, &T) -> std::cmp::Ordering,
    gallop: bool,
) -> Vec<T> {
    merge_sorted_runs_impl(a, b, cmp, gallop)
}

/// A session-lifetime pool of scratch buffers for the solve hot paths.
///
/// Each consistency solve used to allocate its working buffers — network
/// row scratch, semijoin key arenas, lifting extension rows — from
/// scratch and drop them on return. Repeated `check`/`witness`/stream
/// updates through one session pay that allocator round-trip every time.
/// The pool keeps the freed buffers instead: `take_*` pops a warm buffer
/// (empty, but with its previous capacity), `put_*` clears and returns
/// it. Misses fall back to `Vec::new`, so the pool is never required for
/// correctness, only for reuse.
///
/// The pool is internally synchronized (shard workers check buffers in
/// and out concurrently) and bounded: at most [`ScratchPool::MAX_RETAINED`]
/// buffers per kind are retained in each shard, so one huge transient
/// workload cannot pin its peak memory for the life of the session.
///
/// Internally the freelists are split across [`ScratchPool::SHARDS`]
/// lock shards keyed by the calling thread, so many concurrent streams
/// (the serving daemon routes every connection's session through one
/// shared pool) don't serialize on a single mutex. A thread always
/// returns buffers to the shard it took them from, which keeps the warm
/// single-threaded hit rate identical to the unsharded pool.
#[derive(Debug)]
pub struct ScratchPool {
    shards: [ScratchShard; ScratchPool::SHARDS],
}

#[derive(Debug, Default)]
struct ScratchShard {
    values: Mutex<Vec<Vec<Value>>>,
    words: Mutex<Vec<Vec<u64>>>,
}

impl Default for ScratchPool {
    fn default() -> Self {
        ScratchPool {
            shards: std::array::from_fn(|_| ScratchShard::default()),
        }
    }
}

impl ScratchPool {
    /// Retention cap per buffer kind *per shard*; see the type docs.
    pub const MAX_RETAINED: usize = 32;

    /// Number of internal lock shards (power of two).
    pub const SHARDS: usize = 8;

    /// An empty pool.
    pub fn new() -> Self {
        ScratchPool::default()
    }

    /// The shard serving the calling thread. The thread-id hash is
    /// cached in a thread-local so steady-state take/put pairs cost one
    /// `Cell` read, and a thread keeps hitting the same (warm) freelist.
    fn shard(&self) -> &ScratchShard {
        use std::hash::{Hash, Hasher};
        thread_local! {
            static SHARD: std::cell::Cell<usize> = const { std::cell::Cell::new(usize::MAX) };
        }
        let idx = SHARD.with(|cached| {
            let idx = cached.get();
            if idx != usize::MAX {
                return idx;
            }
            let mut h = std::collections::hash_map::DefaultHasher::new();
            std::thread::current().id().hash(&mut h);
            let idx = (h.finish() as usize) & (Self::SHARDS - 1);
            cached.set(idx);
            idx
        });
        &self.shards[idx]
    }

    /// Pops a pooled `Vec<Value>` scratch buffer (empty; warm capacity
    /// if one was returned earlier), or a fresh one on a miss.
    pub fn take_values(&self) -> Vec<Value> {
        match self.shard().values.lock() {
            Ok(mut pool) => pool.pop().unwrap_or_default(),
            Err(_) => Vec::new(),
        }
    }

    /// Returns a `Vec<Value>` scratch buffer to the pool for reuse.
    /// Zero-capacity buffers and overflow past the retention cap are
    /// simply dropped.
    pub fn put_values(&self, mut buf: Vec<Value>) {
        buf.clear();
        if buf.capacity() == 0 {
            return;
        }
        if let Ok(mut pool) = self.shard().values.lock() {
            if pool.len() < Self::MAX_RETAINED {
                pool.push(buf);
            }
        }
    }

    /// Pops a pooled `Vec<u64>` scratch buffer, or a fresh one on a miss.
    pub fn take_words(&self) -> Vec<u64> {
        match self.shard().words.lock() {
            Ok(mut pool) => pool.pop().unwrap_or_default(),
            Err(_) => Vec::new(),
        }
    }

    /// Returns a `Vec<u64>` scratch buffer to the pool for reuse.
    pub fn put_words(&self, mut buf: Vec<u64>) {
        buf.clear();
        if buf.capacity() == 0 {
            return;
        }
        if let Ok(mut pool) = self.shard().words.lock() {
            if pool.len() < Self::MAX_RETAINED {
                pool.push(buf);
            }
        }
    }
}

/// One shard's output: freshly assembled rows (flat, row-major) with
/// precomputed content hashes and a parallel `u64` payload column
/// (multiplicities for bags, capacities for network middle edges).
#[derive(Clone, Debug)]
pub struct ShardRun {
    arity: usize,
    rows: Vec<Value>,
    hashes: Vec<u64>,
    payload: Vec<u64>,
}

impl ShardRun {
    /// An empty run of `arity`-wide rows.
    pub fn new(arity: usize) -> Self {
        ShardRun {
            arity,
            rows: Vec::new(),
            hashes: Vec::new(),
            payload: Vec::new(),
        }
    }

    /// An empty run with room for `rows` rows.
    pub fn with_capacity(arity: usize, rows: usize) -> Self {
        ShardRun {
            arity,
            rows: Vec::with_capacity(arity * rows),
            hashes: Vec::with_capacity(rows),
            payload: Vec::with_capacity(rows),
        }
    }

    /// Appends a row with its payload, hashing it on the worker thread.
    #[inline]
    pub fn push(&mut self, row: &[Value], payload: u64) {
        debug_assert_eq!(row.len(), self.arity);
        self.rows.extend_from_slice(row);
        self.hashes.push(hash_row(row));
        self.payload.push(payload);
    }

    /// Row width of the run.
    #[inline]
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of rows in the run.
    #[inline]
    pub fn len(&self) -> usize {
        self.hashes.len()
    }

    /// True iff the run holds no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.hashes.is_empty()
    }

    /// The `i`-th row of the run.
    #[inline]
    pub fn row(&self, i: usize) -> &[Value] {
        &self.rows[i * self.arity..(i + 1) * self.arity]
    }

    /// The `i`-th row's precomputed content hash.
    #[inline]
    pub fn hash(&self, i: usize) -> u64 {
        self.hashes[i]
    }

    /// The `i`-th row's payload (multiplicity / capacity).
    #[inline]
    pub fn payload(&self, i: usize) -> u64 {
        self.payload[i]
    }
}

/// An ordered collection of per-shard output runs over one schema — the
/// intermediate form between parallel shard workers and the single
/// [`RowStore`] arena the rest of the system consumes.
///
/// Invariants the producers guarantee (and splicing relies on):
/// rows are **globally distinct** across runs (shards cover disjoint key
/// ranges, and keys are part of every output row), and runs are in
/// ascending key order, so concatenation reproduces the sequential
/// emission order exactly.
#[derive(Clone, Debug)]
pub struct ShardedRowStore {
    arity: usize,
    runs: Vec<ShardRun>,
}

impl ShardedRowStore {
    /// Wraps per-shard runs (all of width `arity`, in shard order).
    pub fn from_runs(arity: usize, runs: Vec<ShardRun>) -> Self {
        debug_assert!(runs.iter().all(|r| r.arity == arity));
        ShardedRowStore { arity, runs }
    }

    /// Total rows across all runs.
    pub fn total_rows(&self) -> usize {
        self.runs.iter().map(ShardRun::len).sum()
    }

    /// The per-shard runs, in shard (= ascending key) order.
    pub fn runs(&self) -> &[ShardRun] {
        &self.runs
    }

    /// Splices every run into one interned [`RowStore`], reusing the
    /// worker-computed hashes (no rehash on the splice thread).
    pub fn into_store(self) -> RowStore {
        let mut store = RowStore::with_capacity(self.arity, self.total_rows());
        for run in &self.runs {
            for i in 0..run.len() {
                store.push_unique_hashed(run.row(i), run.hash(i));
            }
        }
        store
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(xs: &[u64]) -> Vec<Value> {
        xs.iter().copied().map(Value::new).collect()
    }

    /// Checks the three shard-plan invariants: ranges tile `0..n`, are
    /// non-empty, and never split a key group.
    fn check_ranges(n: usize, ranges: &[Range<usize>], mut same_group: impl FnMut(usize) -> bool) {
        if n == 0 {
            assert!(ranges.is_empty());
            return;
        }
        assert_eq!(ranges.first().unwrap().start, 0);
        assert_eq!(ranges.last().unwrap().end, n);
        for w in ranges.windows(2) {
            assert_eq!(w[0].end, w[1].start, "ranges must tile contiguously");
        }
        for r in ranges {
            assert!(r.start < r.end, "no empty shards");
            if r.start > 0 {
                assert!(!same_group(r.start), "boundary splits a key group");
            }
        }
    }

    /// Silences the default panic-to-stderr hook for the duration of a
    /// test that panics on purpose (worker containment tests).
    fn with_quiet_panics<T>(f: impl FnOnce() -> T) -> T {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let out = f();
        std::panic::set_hook(prev);
        out
    }

    #[test]
    fn try_run_tasks_reports_panicking_task_index() {
        for threads in [1, 4] {
            let cfg = ExecConfig {
                threads,
                min_parallel_support: 1,
                deadline: Deadline::NONE,
            };
            let tasks: Vec<usize> = (0..16).collect();
            let err = with_quiet_panics(|| {
                try_run_tasks(&cfg, tasks, |i| {
                    if i == 7 {
                        panic!("boom at {i}");
                    }
                    i * 2
                })
                .unwrap_err()
            });
            match err {
                CoreError::WorkerPanicked { task, message } => {
                    assert_eq!(task, 7, "threads={threads}");
                    assert!(message.contains("boom at 7"), "message = {message:?}");
                }
                other => panic!("expected WorkerPanicked, got {other}"),
            }
        }
    }

    #[test]
    fn legacy_run_tasks_panic_names_the_task() {
        let caught = with_quiet_panics(|| {
            std::panic::catch_unwind(|| {
                run_tasks(4, (0..8).collect::<Vec<usize>>(), |i| {
                    if i == 3 {
                        panic!("exploded");
                    }
                    i
                })
            })
            .unwrap_err()
        });
        let msg = caught
            .downcast_ref::<String>()
            .cloned()
            .expect("re-raised panic carries a String payload");
        assert!(
            msg.contains("worker task 3 panicked") && msg.contains("exploded"),
            "payload = {msg:?}"
        );
    }

    #[test]
    fn try_run_tasks_aborts_on_expired_deadline() {
        use crate::cancel::AbortReason;
        for threads in [1, 4] {
            let cfg = ExecConfig {
                threads,
                min_parallel_support: 1,
                deadline: Deadline::at(std::time::Instant::now()),
            };
            let err = try_run_tasks(&cfg, (0..64).collect::<Vec<usize>>(), |i| i).unwrap_err();
            assert_eq!(err, CoreError::Aborted(AbortReason::DeadlineExceeded));
        }
    }

    #[test]
    fn try_run_tasks_aborts_on_cancelled_token() {
        use crate::cancel::{AbortReason, CancelToken};
        let token = CancelToken::new();
        token.cancel();
        let cfg = ExecConfig {
            threads: 4,
            min_parallel_support: 1,
            deadline: Deadline::cancelled_by(token),
        };
        let err = try_run_tasks(&cfg, (0..64).collect::<Vec<usize>>(), |i| i).unwrap_err();
        assert_eq!(err, CoreError::Aborted(AbortReason::Cancelled));
    }

    #[test]
    fn try_run_tasks_succeeds_in_task_order() {
        let cfg = ExecConfig {
            threads: 4,
            min_parallel_support: 1,
            deadline: Deadline::NONE,
        };
        let out = try_run_tasks(&cfg, (0..100usize).collect(), |i| i * 3).unwrap();
        assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn panic_beats_abort_when_both_fire() {
        // A panicking worker sets `halt`; siblings then see the halt (or
        // an expired deadline) — the panic must still win the report.
        let cfg = ExecConfig {
            threads: 4,
            min_parallel_support: 1,
            deadline: Deadline::after(std::time::Duration::from_millis(1)),
        };
        let err = with_quiet_panics(|| {
            try_run_tasks(&cfg, (0..4usize).collect(), |i| {
                if i == 0 {
                    panic!("first chunk dies");
                }
                std::thread::sleep(std::time::Duration::from_millis(5));
                i
            })
            .unwrap_err()
        });
        match err {
            CoreError::WorkerPanicked { task: 0, .. } => {}
            CoreError::Aborted(_) => {
                // Legal when the deadline fired before any worker claimed
                // chunk 0; rare but not a containment failure.
            }
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn shard_ranges_tile_and_respect_groups() {
        // groups of 3: positions 0..30, group = p / 3
        let same = |p: usize| (p / 3) == ((p - 1) / 3);
        for shards in 1..=8 {
            let ranges = shard_ranges(30, shards, same);
            check_ranges(30, &ranges, same);
            assert!(ranges.len() <= shards);
        }
    }

    #[test]
    fn giant_group_collapses_to_one_shard() {
        // everything is one group: no interior boundary is legal
        let ranges = shard_ranges(100, 4, |_| true);
        assert_eq!(ranges, vec![0..100]);
    }

    #[test]
    fn empty_input_has_no_shards() {
        assert!(shard_ranges(0, 4, |_| false).is_empty());
    }

    #[test]
    fn more_shards_than_items() {
        let ranges = shard_ranges(3, 16, |_| false);
        check_ranges(3, &ranges, |_| false);
    }

    #[test]
    fn skewed_groups_drop_empty_shards() {
        // one giant group covering 0..90 followed by singletons
        let same = |p: usize| p < 90;
        let ranges = shard_ranges(100, 4, same);
        check_ranges(100, &ranges, same);
        // the first three tentative boundaries all land inside the giant
        // group and slide forward to 90
        assert_eq!(ranges[0], 0..90);
    }

    #[test]
    fn run_shards_preserves_order() {
        let ranges = shard_ranges(16, 4, |_| false);
        let sums = run_shards(4, ranges.clone(), |r| r.sum::<usize>());
        let expected: Vec<usize> = ranges.into_iter().map(|r| r.sum()).collect();
        assert_eq!(sums, expected);
    }

    #[test]
    fn run_shards_caps_workers_and_keeps_order() {
        // 16 single-item ranges over 2 threads: outputs must still come
        // back in range order despite chunked distribution.
        let ranges: Vec<std::ops::Range<usize>> = (0..16).map(|i| i..i + 1).collect();
        let out = run_shards(2, ranges, |r| r.start);
        assert_eq!(out, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn run_shards_sequential_fallback_matches() {
        let ranges = shard_ranges(16, 4, |_| false);
        let par = run_shards(4, ranges.clone(), |r| r.len());
        let seq = run_shards(1, ranges, |r| r.len());
        assert_eq!(par, seq);
    }

    #[test]
    fn config_fallback_thresholds() {
        let cfg = ExecConfig::with_threads(4);
        // plans oversubscribe: CHUNKS_PER_WORKER chunks per worker leave
        // stealable work when shard costs are skewed
        assert_eq!(
            cfg.shards_for(ExecConfig::DEFAULT_MIN_PARALLEL_SUPPORT),
            4 * ExecConfig::CHUNKS_PER_WORKER
        );
        assert_eq!(
            cfg.shards_for(ExecConfig::DEFAULT_MIN_PARALLEL_SUPPORT - 1),
            1
        );
        assert_eq!(ExecConfig::sequential().shards_for(1 << 20), 1);
        // forcing shards on tiny inputs for tests: threshold 1 still
        // refuses to shard a 0/1-row input
        let tiny = ExecConfig {
            threads: 4,
            min_parallel_support: 1,
            deadline: Deadline::NONE,
        };
        assert_eq!(tiny.shards_for(0), 1);
        assert_eq!(tiny.shards_for(1), 1);
        assert_eq!(tiny.shards_for(2), 4 * ExecConfig::CHUNKS_PER_WORKER);
    }

    /// Regression: a plan asked for more shards than there are items
    /// (threads > supports after the oversubscribed `shards_for`) must
    /// produce only non-empty shards — no empty trailing ranges handed
    /// to workers.
    #[test]
    fn more_shards_than_items_yields_no_empty_shards() {
        for n in [1usize, 2, 3, 5] {
            for shards in [4usize, 16, 64] {
                let ranges = shard_ranges(n, shards, |_| false);
                check_ranges(n, &ranges, |_| false);
                assert!(ranges.len() <= n, "n = {n}, shards = {shards}");
                assert!(
                    ranges.iter().all(|r| !r.is_empty()),
                    "empty shard in plan for n = {n}, shards = {shards}"
                );
            }
        }
        // The aligned two-sided planner inherits the guarantee on its
        // left ranges (right ranges may legitimately be empty — a shard
        // whose keys have no partners).
        let tasks = aligned_shard_tasks(3, 2, 16, |_| false, |_| 0);
        assert!(tasks.iter().all(|(l, _)| !l.is_empty()));
        assert_eq!(tasks.last().unwrap().0.end, 3);
    }

    /// The work-stealing queue returns outputs in task order even when
    /// task costs are wildly skewed (the first task is the most
    /// expensive, so it finishes last on a multicore host).
    #[test]
    fn work_stealing_keeps_task_order_under_skew() {
        let tasks: Vec<usize> = (0..32).collect();
        let out = run_tasks(4, tasks.clone(), |i| {
            // First task spins longest; later tasks return immediately.
            let spin = if i == 0 { 200_000 } else { 10 };
            let mut acc = 0u64;
            for k in 0..spin {
                acc = acc.wrapping_add(std::hint::black_box(k));
            }
            std::hint::black_box(acc);
            (i, i as u64)
        });
        let expected: Vec<(usize, u64)> = tasks.into_iter().map(|i| (i, i as u64)).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn parallel_sort_matches_sequential_sort() {
        let items: Vec<u32> = (0..1000u32)
            .map(|i| i.wrapping_mul(2654435761) % 733)
            .collect();
        let mut expected = items.clone();
        expected.sort_unstable();
        for (threads, shards) in [(1, 1), (2, 3), (4, 16), (8, 64)] {
            let got = parallel_sort_by(items.clone(), threads, shards, |a, b| a.cmp(b));
            assert_eq!(got, expected, "threads = {threads}, shards = {shards}");
        }
        assert!(parallel_sort_by(Vec::<u32>::new(), 4, 8, |a, b| a.cmp(b)).is_empty());
    }

    #[test]
    fn gallop_bound_matches_linear_scan() {
        // Monotone predicates over every (lo, boundary, hi) shape.
        for hi in 0usize..40 {
            for lo in 0..=hi {
                for boundary in lo..=hi {
                    let keep = |p: usize| p < boundary;
                    assert_eq!(
                        gallop_bound(lo, hi, keep),
                        boundary.max(lo),
                        "lo={lo} hi={hi} boundary={boundary}"
                    );
                }
            }
        }
    }

    #[test]
    fn gallop_merge_is_bit_identical_to_linear() {
        // Skewed and balanced pairs, with duplicate keys so the
        // ties-from-a-first rule is actually exercised.
        let cases: Vec<(Vec<u32>, Vec<u32>)> = vec![
            ((0..512).map(|i| i / 3).collect(), vec![5, 5, 100, 170]),
            (vec![7], (0..300).map(|i| i % 64).collect::<Vec<_>>()),
            ((0..64).collect(), (32..96).collect()),
            (vec![], (0..10).collect()),
            ((0..10).collect(), vec![]),
        ];
        for (mut a, mut b) in cases {
            a.sort_unstable();
            b.sort_unstable();
            let linear = merge_sorted_runs_impl(a.clone(), b.clone(), |x, y| x.cmp(y), false);
            let galloped = merge_sorted_runs_impl(a, b, |x, y| x.cmp(y), true);
            assert_eq!(linear, galloped);
        }
    }

    #[test]
    fn scratch_pool_reuses_capacity_and_bounds_retention() {
        let pool = ScratchPool::new();
        let mut buf = pool.take_values();
        assert!(buf.is_empty());
        buf.extend(v(&[1, 2, 3]));
        let cap = buf.capacity();
        pool.put_values(buf);
        let warm = pool.take_values();
        assert!(warm.is_empty());
        assert_eq!(warm.capacity(), cap);
        // Retention is bounded.
        for _ in 0..2 * ScratchPool::MAX_RETAINED {
            pool.put_words(Vec::with_capacity(8));
        }
        let retained = (0..2 * ScratchPool::MAX_RETAINED)
            .map(|_| pool.take_words())
            .filter(|b| b.capacity() > 0)
            .count();
        assert!(retained <= ScratchPool::MAX_RETAINED);
    }

    #[test]
    fn scratch_pool_shards_survive_concurrent_traffic() {
        let pool = std::sync::Arc::new(ScratchPool::new());
        let workers: Vec<_> = (0..4)
            .map(|_| {
                let pool = std::sync::Arc::clone(&pool);
                std::thread::spawn(move || {
                    for _ in 0..200 {
                        let mut buf = pool.take_values();
                        assert!(buf.is_empty());
                        buf.extend(v(&[1, 2]));
                        pool.put_values(buf);
                        let mut w = pool.take_words();
                        w.push(7);
                        pool.put_words(w);
                    }
                })
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
        // Same-thread warm reuse holds after concurrent traffic: a
        // thread always returns to (and takes from) its own shard.
        let mut buf = pool.take_values();
        buf.clear();
        buf.extend(v(&[1, 2, 3]));
        let cap = buf.capacity();
        pool.put_values(buf);
        assert_eq!(pool.take_values().capacity(), cap);
    }

    #[test]
    fn sharded_store_splices_with_precomputed_hashes() {
        let mut a = ShardRun::new(2);
        a.push(&v(&[1, 1]), 2);
        a.push(&v(&[1, 2]), 3);
        let mut b = ShardRun::new(2);
        b.push(&v(&[2, 1]), 5);
        let sharded = ShardedRowStore::from_runs(2, vec![a, b]);
        assert_eq!(sharded.total_rows(), 3);
        let store = sharded.into_store();
        assert_eq!(store.len(), 3);
        // rows land in shard order and stay individually addressable
        assert_eq!(store.lookup(&v(&[1, 2])).map(|id| id.index()), Some(1));
        assert_eq!(store.lookup(&v(&[2, 1])).map(|id| id.index()), Some(2));
    }
}
