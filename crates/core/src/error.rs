//! Error type for core operations.

use crate::{Attr, Schema};
use std::fmt;

/// Errors produced by bag/relation operations.
#[derive(Clone, PartialEq, Eq)]
pub enum CoreError {
    /// A tuple's arity did not match the schema it was used with.
    ArityMismatch {
        /// Arity the schema requires.
        expected: usize,
        /// Arity that was supplied.
        got: usize,
    },
    /// An operation required `sub ⊆ sup` on schemas but it did not hold.
    NotASubschema {
        /// The would-be subschema.
        sub: Schema,
        /// The schema it had to be contained in.
        sup: Schema,
    },
    /// Two operands were required to have the same schema.
    SchemaMismatch {
        /// Schema of the left operand.
        left: Schema,
        /// Schema of the right operand.
        right: Schema,
    },
    /// An attribute assignment mentioned an attribute twice.
    DuplicateAttr(Attr),
    /// An attribute assignment did not cover the full schema.
    MissingAttr(Attr),
    /// A multiplicity computation exceeded `u64::MAX`.
    ///
    /// The paper's size bounds (Theorem 3) concern binary-encoded
    /// multiplicities; rather than silently wrapping we surface overflow.
    MultiplicityOverflow,
    /// A signed multiplicity delta would drive a count below zero
    /// ([`crate::Bag::apply_delta`]).
    MultiplicityUnderflow,
    /// A configuration builder rejected its inputs (e.g. zero threads in
    /// [`crate::exec::ExecConfigBuilder::build`]).
    InvalidConfig(&'static str),
    /// The operation stopped at a cancellation point before completing:
    /// its [`crate::Deadline`] expired, its [`crate::CancelToken`] was
    /// cancelled, or a search budget ran out. The operands are left
    /// exactly as they were — callers can retry with a larger budget or
    /// surface the reason as an "unknown" answer.
    Aborted(crate::AbortReason),
    /// A worker thread panicked inside a parallel bulk operation. The
    /// executor contained the panic ([`crate::exec::try_run_tasks`]),
    /// cancelled the sibling chunks, and reports which task failed; the
    /// operation's operands are left exactly as they were.
    WorkerPanicked {
        /// Index of the task whose body panicked.
        task: usize,
        /// The panic payload's message, when it was a string.
        message: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::ArityMismatch { expected, got } => {
                write!(
                    f,
                    "tuple arity {got} does not match schema arity {expected}"
                )
            }
            CoreError::NotASubschema { sub, sup } => {
                write!(f, "schema {sub} is not a subset of {sup}")
            }
            CoreError::SchemaMismatch { left, right } => {
                write!(f, "schemas differ: {left} vs {right}")
            }
            CoreError::DuplicateAttr(a) => write!(f, "attribute {a} assigned twice"),
            CoreError::MissingAttr(a) => write!(f, "attribute {a} missing from assignment"),
            CoreError::MultiplicityOverflow => {
                write!(f, "multiplicity arithmetic overflowed u64")
            }
            CoreError::MultiplicityUnderflow => {
                write!(f, "multiplicity delta drove a count below zero")
            }
            CoreError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            CoreError::Aborted(reason) => write!(f, "operation aborted: {reason}"),
            CoreError::WorkerPanicked { task, message } => {
                write!(f, "worker task {task} panicked: {message}")
            }
        }
    }
}

impl fmt::Debug for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Attr;

    #[test]
    fn display_messages() {
        let s1 = Schema::from_attrs([Attr(0), Attr(1)]);
        let s2 = Schema::from_attrs([Attr(2)]);
        let e = CoreError::NotASubschema {
            sub: s2.clone(),
            sup: s1.clone(),
        };
        assert!(e.to_string().contains("not a subset"));
        let e = CoreError::SchemaMismatch {
            left: s1,
            right: s2,
        };
        assert!(e.to_string().contains("schemas differ"));
        assert!(CoreError::MultiplicityOverflow
            .to_string()
            .contains("overflow"));
        assert!(CoreError::ArityMismatch {
            expected: 2,
            got: 3
        }
        .to_string()
        .contains("arity"));
        assert!(CoreError::DuplicateAttr(Attr(1))
            .to_string()
            .contains("twice"));
        assert!(CoreError::MissingAttr(Attr(1))
            .to_string()
            .contains("missing"));
    }
}
