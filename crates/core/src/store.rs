//! Columnar, arena-backed row storage.
//!
//! A [`RowStore`] owns every row of one schema in a single contiguous
//! `Vec<Value>` (row-major), hands out compact [`RowId`] handles, and
//! **interns** rows: equal rows share one id, so the arena holds each
//! distinct tuple exactly once. This is the storage layer under
//! [`crate::Bag`] and [`crate::Relation`]; the paper's hot paths — joins,
//! marginals, flow-network construction — operate on `RowId`s and slices
//! into the arena instead of per-tuple `Box<[Value]>` allocations.
//!
//! Deduplication uses an open-addressing hash table (`u32` slots, linear
//! probing) whose entries point back into the arena, so the whole store
//! is at most three flat allocations regardless of row count: no per-row
//! boxes, no per-bucket vectors. The table is **lazy**: a store adopted
//! wholesale from a snapshot ([`RowStore::from_sorted_rows`]) carries
//! its distinctness certificate in the sorted order and only pays for
//! the hash table on the first content probe (lookup, intern, delta).
//!
//! Invariants:
//!
//! * every stored row has length [`RowStore::arity`];
//! * `row(a) == row(b)` implies `a == b` (interning is injective on
//!   content) unless rows were pushed through
//!   [`RowStore::push_unique_unchecked`], whose caller guarantees
//!   freshness;
//! * ids are dense: `0..len()` in insertion order, which lets callers
//!   keep parallel columns (multiplicities, flow capacities) as plain
//!   vectors indexed by `RowId`.

use crate::Value;
use std::hash::{BuildHasher, Hash, Hasher};
use std::sync::OnceLock;

/// Compact handle to an interned row within one [`RowStore`].
///
/// Ids are dense (`0..store.len()`); parallel per-row data can live in a
/// plain vector indexed by [`RowId::index`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RowId(pub u32);

impl RowId {
    /// The id as a vector index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Sentinel for an empty hash slot.
const EMPTY: u32 = u32::MAX;

/// The open-addressing dedup table: row ids probed by row-content hash.
/// Split out of [`RowStore`] so the whole table can sit behind a
/// `OnceLock` and build lazily — a snapshot-adopted store whose rows are
/// certified distinct by their sorted order defers the build until the
/// first content probe actually needs it (the same contract as the lazy
/// packed view).
#[derive(Clone, Debug)]
struct SlotTable {
    /// Open-addressing table of row ids (EMPTY = vacant), linear probing.
    slots: Vec<u32>,
    /// `slots.len() - 1`; slot count is a power of two.
    mask: usize,
}

impl SlotTable {
    /// An empty table sized for `rows` rows at the 7/8 load ceiling.
    fn with_capacity(rows: usize) -> SlotTable {
        let cap = slot_count_for(rows);
        SlotTable {
            slots: vec![EMPTY; cap],
            mask: cap - 1,
        }
    }

    /// Builds the table from an interned arena's rows (all distinct).
    fn build(arity: usize, data: &[Value], len: u32) -> SlotTable {
        let mut table = SlotTable::with_capacity(len as usize);
        if arity == 0 {
            if len > 0 {
                let hash = hash_row(&[]);
                table.slots[hash as usize & table.mask] = 0;
            }
            return table;
        }
        for (id, row) in data.chunks_exact(arity).enumerate() {
            let hash = hash_row(row);
            let mut i = hash as usize & table.mask;
            while table.slots[i] != EMPTY {
                i = (i + 1) & table.mask;
            }
            table.slots[i] = id as u32;
        }
        table
    }
}

/// A per-schema arena of interned rows.
#[derive(Clone, Debug)]
pub struct RowStore {
    arity: usize,
    /// All row data, row-major: row `i` is `data[i*arity .. (i+1)*arity]`.
    data: Vec<Value>,
    /// Number of rows (tracked separately: `arity` may be 0).
    len: u32,
    /// The dedup table, built on first probe (see [`SlotTable`]).
    index: OnceLock<SlotTable>,
}

impl Default for RowStore {
    /// An empty arity-0 store.
    fn default() -> Self {
        RowStore::new(0)
    }
}

impl RowStore {
    /// An empty store for rows of length `arity`.
    pub fn new(arity: usize) -> Self {
        Self::with_capacity(arity, 0)
    }

    /// An empty store with room for `rows` rows before reallocating.
    pub fn with_capacity(arity: usize, rows: usize) -> Self {
        // Pre-set a right-sized table: the caller told us the row count,
        // so there is nothing to gain from laziness here and an eager
        // table avoids doubling rehashes during the fill.
        let index = OnceLock::new();
        let _ = index.set(SlotTable::with_capacity(rows));
        RowStore {
            arity,
            data: Vec::with_capacity(arity * rows),
            len: 0,
            index,
        }
    }

    /// Adopts a pre-sorted, pre-deduplicated columnar arena wholesale —
    /// the bulk-move half of snapshot loading. `data` must hold exactly
    /// `rows * arity` values laid out row-major in **strictly increasing**
    /// lexicographic row order; strictness doubles as the distinctness
    /// certificate, so no content comparisons are needed beyond one
    /// adjacent-pair pass. The dedup table is left **unbuilt**: sorted
    /// strict order already certifies distinctness, so hashing every row
    /// up front would be pure overhead on the snapshot-open path — the
    /// table materializes on the first content probe instead.
    /// Returns `None` if the shape or the ordering certificate fails —
    /// never adopts a half-checked arena.
    pub fn from_sorted_rows(arity: usize, rows: usize, data: Vec<Value>) -> Option<RowStore> {
        if data.len() != rows.checked_mul(arity)? || rows > (u32::MAX - 1) as usize {
            return None;
        }
        if arity == 0 && rows > 1 {
            // Arity-0 rows are all equal; at most one can be distinct.
            return None;
        }
        if arity > 0 {
            let mut prev: &[Value] = &[];
            for (id, row) in data.chunks_exact(arity).enumerate() {
                if id > 0 && prev >= row {
                    return None;
                }
                prev = row;
            }
        }
        Some(RowStore {
            arity,
            data,
            len: rows as u32,
            index: OnceLock::new(),
        })
    }

    /// Row length this store accepts.
    #[inline]
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of stored rows.
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True iff no rows are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The row behind `id`.
    ///
    /// # Panics
    /// Panics if `id` is out of bounds.
    #[inline]
    pub fn row(&self, id: RowId) -> &[Value] {
        let i = id.index();
        assert!(
            i < self.len(),
            "RowId {i} out of bounds (len {})",
            self.len()
        );
        &self.data[i * self.arity..(i + 1) * self.arity]
    }

    /// Iterates over rows in id order.
    #[inline]
    pub fn iter(&self) -> impl ExactSizeIterator<Item = &[Value]> + '_ {
        // `chunks_exact(0)` panics, so route arity-0 stores through a
        // constant empty slice repeated `len` times.
        RowIter {
            store: self,
            next: 0,
        }
    }

    /// The raw columnar arena (row-major). Exposed for single-pass scans
    /// that want to avoid per-row bounds checks.
    #[inline]
    pub fn values(&self) -> &[Value] {
        &self.data
    }

    /// Interns `row`, returning its id and whether it was newly added.
    ///
    /// # Panics
    /// Panics if `row.len() != self.arity()`.
    pub fn intern(&mut self, row: &[Value]) -> (RowId, bool) {
        assert_eq!(row.len(), self.arity, "row arity mismatch");
        self.grow_if_needed();
        let hash = hash_row(row);
        // Probe with shared borrows first (table + arena), then mutate
        // once the probe has settled on either a hit or a vacant slot.
        let vacant = {
            let table = self.index.get().expect("grow_if_needed builds the table");
            let mut i = hash as usize & table.mask;
            loop {
                let slot = table.slots[i];
                if slot == EMPTY {
                    break i;
                }
                if self.stored_row(slot) == row {
                    return (RowId(slot), false);
                }
                i = (i + 1) & table.mask;
            }
        };
        let id = self.push_row(row);
        self.index.get_mut().expect("built above").slots[vacant] = id.0;
        (id, true)
    }

    /// Looks up an existing row without inserting. First call on a
    /// snapshot-adopted store builds the dedup table (`O(len)`, once).
    pub fn lookup(&self, row: &[Value]) -> Option<RowId> {
        if row.len() != self.arity || self.len == 0 {
            return None;
        }
        let table = self.table();
        let hash = hash_row(row);
        let mut i = hash as usize & table.mask;
        loop {
            let slot = table.slots[i];
            if slot == EMPTY {
                return None;
            }
            if self.stored_row(slot) == row {
                return Some(RowId(slot));
            }
            i = (i + 1) & table.mask;
        }
    }

    /// Appends a row the caller guarantees is not yet present (e.g. join
    /// outputs, which are distinct by construction). Still registered in
    /// the dedup table so later [`RowStore::lookup`]/[`RowStore::intern`]
    /// calls see it; only the content comparison is skipped.
    ///
    /// # Panics
    /// Panics if `row.len() != self.arity()`. Violating the uniqueness
    /// contract leaves lookups returning an arbitrary duplicate.
    pub fn push_unique_unchecked(&mut self, row: &[Value]) -> RowId {
        self.push_unique_hashed(row, hash_row(row))
    }

    /// [`RowStore::push_unique_unchecked`] with a caller-precomputed
    /// content hash (`hash_row(row)`).
    ///
    /// This is the splice half of the shard-parallel builders
    /// ([`crate::exec`]): worker threads hash rows into
    /// [`crate::exec::ShardRun`]s, and the sequential splice only probes
    /// the flat table — no rehashing on the spliced thread.
    ///
    /// # Panics
    /// Panics if `row.len() != self.arity()`. The uniqueness contract of
    /// [`RowStore::push_unique_unchecked`] applies; a wrong hash
    /// additionally breaks future lookups of this row (debug-checked).
    pub fn push_unique_hashed(&mut self, row: &[Value], hash: u64) -> RowId {
        assert_eq!(row.len(), self.arity, "row arity mismatch");
        debug_assert_eq!(hash, hash_row(row), "mismatched precomputed hash");
        debug_assert!(
            self.lookup(row).is_none(),
            "push_unique_unchecked on duplicate row"
        );
        self.grow_if_needed();
        let vacant = {
            let table = self.index.get().expect("grow_if_needed builds the table");
            let mut i = hash as usize & table.mask;
            while table.slots[i] != EMPTY {
                i = (i + 1) & table.mask;
            }
            i
        };
        let id = self.push_row(row);
        self.index.get_mut().expect("built above").slots[vacant] = id.0;
        id
    }

    /// Drops every row with id `>= new_len`, restoring the store to an
    /// earlier length — the rollback half of the delta-apply atomicity
    /// guarantee ([`crate::Bag::apply_delta_with`]). Error-path-only:
    /// individual slots cannot be unlinked from a linear-probing table
    /// without corrupting probe chains, so the dedup table is simply
    /// discarded and rebuilt lazily from the surviving rows on the next
    /// probe (`O(new_len)` — acceptable where the alternative is a
    /// corrupted bag).
    pub(crate) fn truncate(&mut self, new_len: usize) {
        if new_len >= self.len() {
            return;
        }
        self.data.truncate(new_len * self.arity);
        self.len = new_len as u32;
        self.index = OnceLock::new();
    }

    /// Rebuilds the store with rows in `order`, dropping rows not listed.
    ///
    /// `order` must contain distinct, in-bounds ids. Used by
    /// [`crate::Bag::seal`] to lay rows out in lexicographic order (the
    /// "sorted run" invariant) and to compact away tombstoned rows.
    pub(crate) fn reordered(&self, order: &[u32]) -> RowStore {
        let mut out = RowStore::with_capacity(self.arity, order.len());
        for &old in order {
            let row = self.row(RowId(old));
            // Rows come from an interned store and `order` has no
            // duplicates, so each pushed row is unique.
            out.push_unique_unchecked(row);
        }
        out
    }

    /// [`RowStore::reordered`] with the copy-and-rehash fanned out over
    /// the shard executor: `order` splits into plain index ranges (rows
    /// are independent — no key-group constraint), each worker copies
    /// its rows into a [`crate::exec::ShardRun`] and hashes them there,
    /// and the runs splice back in range order. The resulting layout is
    /// byte-identical to `reordered(order)`; only the hashing moved off
    /// the calling thread. Falls back to [`RowStore::reordered`] when
    /// `cfg` does not shard `order`.
    pub(crate) fn reordered_with(&self, order: &[u32], cfg: &crate::exec::ExecConfig) -> RowStore {
        use crate::exec::{run_shards, shard_ranges, ShardRun, ShardedRowStore};
        let shards = cfg.shards_for(order.len());
        if shards <= 1 {
            return self.reordered(order);
        }
        let ranges = shard_ranges(order.len(), shards, |_| false);
        let runs = run_shards(cfg.threads(), ranges, |range| {
            let mut run = ShardRun::with_capacity(self.arity, range.len());
            for &old in &order[range] {
                run.push(self.row(RowId(old)), 0);
            }
            run
        });
        ShardedRowStore::from_runs(self.arity, runs).into_store()
    }

    /// The ids of `order` sorted by their rows' lexicographic order —
    /// the sort half of the parallel seal, fanned out per `cfg` through
    /// [`crate::exec::parallel_sort_by`]. Interned rows are distinct, so
    /// the order is total and independent of the chunking.
    ///
    /// When a transient packed view fits ([`crate::pack::PackedView`]),
    /// every comparison in the sort is one integer compare on the packed
    /// word column instead of a `&[Value]` slice walk; the encoding is
    /// injective and order-preserving, so the resulting order is
    /// bit-identical to the slice-compare path.
    pub(crate) fn sorted_order_with(
        &self,
        order: Vec<u32>,
        cfg: &crate::exec::ExecConfig,
    ) -> Vec<u32> {
        let shards = cfg.shards_for(order.len());
        let ord = crate::pack::RowOrd::new(self, order.len());
        crate::exec::parallel_sort_by(order, cfg.threads(), shards, |&a, &b| ord.cmp(a, b))
    }

    /// The dedup table, built on first use.
    #[inline]
    fn table(&self) -> &SlotTable {
        self.index
            .get_or_init(|| SlotTable::build(self.arity, &self.data, self.len))
    }

    #[inline]
    fn stored_row(&self, id: u32) -> &[Value] {
        let i = id as usize;
        &self.data[i * self.arity..(i + 1) * self.arity]
    }

    #[inline]
    fn push_row(&mut self, row: &[Value]) -> RowId {
        assert!(
            self.len < u32::MAX - 1,
            "RowStore capacity (u32 ids) exhausted"
        );
        self.data.extend_from_slice(row);
        let id = RowId(self.len);
        self.len += 1;
        id
    }

    /// Ensures the dedup table exists and keeps its load factor below
    /// 7/8, rehashing by re-deriving hashes from row content (no stored
    /// hash column needed).
    fn grow_if_needed(&mut self) {
        if self.index.get().is_none() {
            let table = SlotTable::build(self.arity, &self.data, self.len);
            let _ = self.index.set(table);
        }
        let cur = self.index.get().expect("just built").slots.len();
        if (self.len as usize + 1) * 8 <= cur * 7 {
            return;
        }
        let cap = cur * 2;
        let mask = cap - 1;
        let mut slots = vec![EMPTY; cap];
        for id in 0..self.len {
            let hash = hash_row(self.stored_row(id));
            let mut i = hash as usize & mask;
            while slots[i] != EMPTY {
                i = (i + 1) & mask;
            }
            slots[i] = id;
        }
        *self.index.get_mut().expect("built above") = SlotTable { slots, mask };
    }
}

/// Iterator over a store's rows in id order.
struct RowIter<'a> {
    store: &'a RowStore,
    next: usize,
}

impl<'a> Iterator for RowIter<'a> {
    type Item = &'a [Value];

    #[inline]
    fn next(&mut self) -> Option<&'a [Value]> {
        if self.next >= self.store.len() {
            return None;
        }
        let id = RowId(self.next as u32);
        self.next += 1;
        Some(self.store.row(id))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.store.len() - self.next;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for RowIter<'_> {}

/// Hashes a row's content with the workspace Fx hasher.
#[inline]
pub fn hash_row(row: &[Value]) -> u64 {
    let mut h = crate::FxBuildHasher::default().build_hasher();
    for v in row {
        v.get().hash(&mut h);
    }
    h.finish()
}

/// Smallest power-of-two slot count holding `rows` at 7/8 load.
fn slot_count_for(rows: usize) -> usize {
    let needed = rows + rows / 4 + 8;
    needed.next_power_of_two()
}

/// Compares two rows lexicographically through a store.
#[inline]
pub(crate) fn cmp_rows(store: &RowStore, a: u32, b: u32) -> std::cmp::Ordering {
    store.row(RowId(a)).cmp(store.row(RowId(b)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(xs: &[u64]) -> Vec<Value> {
        xs.iter().copied().map(Value::new).collect()
    }

    #[test]
    fn intern_dedups_and_round_trips() {
        let mut s = RowStore::new(3);
        let (a, fresh_a) = s.intern(&v(&[1, 2, 3]));
        let (b, fresh_b) = s.intern(&v(&[4, 5, 6]));
        let (a2, fresh_a2) = s.intern(&v(&[1, 2, 3]));
        assert!(fresh_a && fresh_b && !fresh_a2);
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(s.len(), 2);
        assert_eq!(s.row(a), &v(&[1, 2, 3])[..]);
        assert_eq!(s.row(b), &v(&[4, 5, 6])[..]);
    }

    #[test]
    fn lookup_finds_only_present_rows() {
        let mut s = RowStore::new(2);
        let (id, _) = s.intern(&v(&[7, 8]));
        assert_eq!(s.lookup(&v(&[7, 8])), Some(id));
        assert_eq!(s.lookup(&v(&[8, 7])), None);
        assert_eq!(s.lookup(&v(&[7])), None, "wrong arity is never present");
    }

    #[test]
    fn survives_growth_past_initial_capacity() {
        let mut s = RowStore::with_capacity(2, 2);
        let ids: Vec<RowId> = (0..1000).map(|i| s.intern(&v(&[i, i * i])).0).collect();
        assert_eq!(s.len(), 1000);
        for (i, id) in ids.iter().enumerate() {
            let i = i as u64;
            assert_eq!(s.row(*id), &v(&[i, i * i])[..]);
            assert_eq!(s.lookup(&v(&[i, i * i])), Some(*id));
        }
    }

    #[test]
    fn arity_zero_rows_all_intern_to_one_id() {
        let mut s = RowStore::new(0);
        let (a, fresh) = s.intern(&[]);
        let (b, fresh2) = s.intern(&[]);
        assert!(fresh && !fresh2);
        assert_eq!(a, b);
        assert_eq!(s.len(), 1);
        assert_eq!(s.row(a), &[] as &[Value]);
        assert_eq!(s.iter().count(), 1);
    }

    #[test]
    fn iter_is_id_order() {
        let mut s = RowStore::new(1);
        s.intern(&v(&[9]));
        s.intern(&v(&[3]));
        s.intern(&v(&[7]));
        let rows: Vec<u64> = s.iter().map(|r| r[0].get()).collect();
        assert_eq!(rows, vec![9, 3, 7]);
    }

    #[test]
    fn reordered_keeps_content_and_drops_unlisted() {
        let mut s = RowStore::new(1);
        for i in 0..5 {
            s.intern(&v(&[i]));
        }
        let r = s.reordered(&[4, 0, 2]);
        let rows: Vec<u64> = r.iter().map(|row| row[0].get()).collect();
        assert_eq!(rows, vec![4, 0, 2]);
        assert_eq!(r.lookup(&v(&[1])), None);
        assert_eq!(r.lookup(&v(&[2])), Some(RowId(2)));
    }

    #[test]
    fn default_store_upholds_slot_invariant() {
        let mut s = RowStore::default();
        let (id, fresh) = s.intern(&[]);
        assert!(fresh);
        assert_eq!(s.row(id), &[] as &[Value]);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn from_sorted_rows_defers_index_until_first_probe() {
        let s = RowStore::from_sorted_rows(2, 3, v(&[1, 2, 3, 4, 5, 6])).unwrap();
        assert!(s.index.get().is_none(), "adoption must not build the table");
        assert_eq!(s.lookup(&v(&[3, 4])), Some(RowId(1)));
        assert!(s.index.get().is_some(), "first probe builds the table");
        assert_eq!(s.lookup(&v(&[5, 7])), None);
        // Mutation after lazy adoption keeps the table coherent.
        let mut s = s;
        let (id, fresh) = s.intern(&v(&[0, 9]));
        assert!(fresh);
        assert_eq!(s.lookup(&v(&[0, 9])), Some(id));
    }

    #[test]
    fn truncate_discards_and_lazily_rebuilds_index() {
        let mut s = RowStore::new(1);
        for i in 0..10 {
            s.intern(&v(&[i]));
        }
        s.truncate(4);
        assert!(s.index.get().is_none());
        assert_eq!(s.len(), 4);
        assert_eq!(s.lookup(&v(&[3])), Some(RowId(3)));
        assert_eq!(s.lookup(&v(&[7])), None);
        let (id, fresh) = s.intern(&v(&[7]));
        assert!(fresh);
        assert_eq!(id, RowId(4));
    }

    #[test]
    fn push_unique_registers_in_index() {
        let mut s = RowStore::new(2);
        let id = s.push_unique_unchecked(&v(&[1, 2]));
        assert_eq!(s.lookup(&v(&[1, 2])), Some(id));
        let (again, fresh) = s.intern(&v(&[1, 2]));
        assert_eq!(again, id);
        assert!(!fresh);
    }
}
