//! Relations: finite sets of tuples (`Tup(X) → {0,1}`).
//!
//! A [`Relation`] is the set-semantics counterpart of [`crate::Bag`]; the
//! paper identifies relations with bags whose multiplicities are 0/1.
//! Relations carry the set-case baseline of Section 5.1 (the universal
//! relation problem) and the supports `R'` of bags.

use crate::tuple::project_row;
use crate::{Bag, CoreError, FxHashSet, Result, Row, Schema, Value};
use std::fmt;

/// A finite relation over a fixed schema.
#[derive(Clone)]
pub struct Relation {
    schema: Schema,
    rows: FxHashSet<Row>,
}

impl Relation {
    /// Creates an empty relation over `schema`.
    pub fn new(schema: Schema) -> Self {
        Relation { schema, rows: FxHashSet::default() }
    }

    /// Builds a relation from rows (values in schema order).
    pub fn from_rows<I, R>(schema: Schema, rows: I) -> Result<Self>
    where
        I: IntoIterator<Item = R>,
        R: Into<Vec<Value>>,
    {
        let mut rel = Relation::new(schema);
        for row in rows {
            rel.insert(row)?;
        }
        Ok(rel)
    }

    /// Convenience constructor from plain `u64` rows.
    pub fn from_u64s<'a, I>(schema: Schema, rows: I) -> Result<Self>
    where
        I: IntoIterator<Item = &'a [u64]>,
    {
        let mut rel = Relation::new(schema);
        for row in rows {
            rel.insert(row.iter().copied().map(Value::new).collect::<Vec<_>>())?;
        }
        Ok(rel)
    }

    /// The relation over `∅` holding the empty tuple — the identity of the
    /// relational join.
    pub fn unit() -> Self {
        let mut rel = Relation::new(Schema::empty());
        rel.rows.insert(Box::new([]));
        rel
    }

    /// The relation's schema.
    #[inline]
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Inserts a row (values in schema order).
    pub fn insert(&mut self, row: impl Into<Vec<Value>>) -> Result<()> {
        let row: Vec<Value> = row.into();
        if row.len() != self.schema.arity() {
            return Err(CoreError::ArityMismatch {
                expected: self.schema.arity(),
                got: row.len(),
            });
        }
        self.rows.insert(row.into_boxed_slice());
        Ok(())
    }

    /// Internal: inserts a pre-validated row without re-checking arity.
    pub(crate) fn insert_row_unchecked(&mut self, row: Row) {
        debug_assert_eq!(row.len(), self.schema.arity());
        self.rows.insert(row);
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, row: &[Value]) -> bool {
        self.rows.contains(row)
    }

    /// Number of tuples.
    #[inline]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True iff the relation has no tuples.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Iterates over rows in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = &[Value]> + '_ {
        self.rows.iter().map(|r| &**r)
    }

    /// Rows sorted lexicographically, for deterministic output.
    pub fn iter_sorted(&self) -> Vec<&[Value]> {
        let mut v: Vec<&[Value]> = self.iter().collect();
        v.sort_unstable();
        v
    }

    /// Projection `R[Z]` under set semantics (duplicates collapse).
    pub fn project(&self, sub: &Schema) -> Result<Relation> {
        let idx = self.schema.projection_indices(sub)?;
        let mut out = Relation::new(sub.clone());
        for row in &self.rows {
            out.rows.insert(project_row(row, &idx));
        }
        Ok(out)
    }

    /// Set containment `R ⊆ S` (schemas must match to be comparable).
    pub fn subset_of(&self, other: &Relation) -> bool {
        self.schema == other.schema && self.rows.iter().all(|r| other.rows.contains(r))
    }

    /// Views this relation as a bag with all multiplicities 1.
    pub fn to_bag(&self) -> Bag {
        let mut bag = Bag::with_capacity(self.schema.clone(), self.rows.len());
        for row in &self.rows {
            bag.insert(row.to_vec(), 1).expect("arity verified on insert");
        }
        bag
    }
}

impl PartialEq for Relation {
    fn eq(&self, other: &Self) -> bool {
        self.schema == other.schema && self.rows == other.rows
    }
}

impl Eq for Relation {}

impl fmt::Debug for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.schema)?;
        for row in self.iter_sorted() {
            let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
            writeln!(f, "  {}", cells.join(" "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Attr;

    fn schema(ids: &[u32]) -> Schema {
        Schema::from_attrs(ids.iter().map(|&i| Attr::new(i)))
    }

    #[test]
    fn insert_dedups() {
        let mut r = Relation::new(schema(&[0, 1]));
        r.insert(vec![Value(1), Value(2)]).unwrap();
        r.insert(vec![Value(1), Value(2)]).unwrap();
        assert_eq!(r.len(), 1);
        assert!(r.contains(&[Value(1), Value(2)]));
        assert!(!r.contains(&[Value(2), Value(1)]));
    }

    #[test]
    fn arity_checked() {
        let mut r = Relation::new(schema(&[0, 1]));
        assert!(r.insert(vec![Value(1)]).is_err());
    }

    #[test]
    fn projection_collapses() {
        let r = Relation::from_u64s(schema(&[0, 1]), [&[1u64, 1][..], &[1, 2][..], &[2, 1][..]])
            .unwrap();
        let p = r.project(&schema(&[0])).unwrap();
        assert_eq!(p.len(), 2);
        assert!(p.contains(&[Value(1)]));
        assert!(p.contains(&[Value(2)]));
    }

    #[test]
    fn unit_relation() {
        let u = Relation::unit();
        assert_eq!(u.len(), 1);
        assert!(u.contains(&[]));
        assert_eq!(u.schema(), &Schema::empty());
    }

    #[test]
    fn subset() {
        let r = Relation::from_u64s(schema(&[0]), [&[1u64][..]]).unwrap();
        let s = Relation::from_u64s(schema(&[0]), [&[1u64][..], &[2][..]]).unwrap();
        assert!(r.subset_of(&s));
        assert!(!s.subset_of(&r));
        let t = Relation::from_u64s(schema(&[1]), [&[1u64][..]]).unwrap();
        assert!(!r.subset_of(&t)); // different schema
    }

    #[test]
    fn to_bag_and_back() {
        let r = Relation::from_u64s(schema(&[0, 1]), [&[1u64, 2][..], &[3, 4][..]]).unwrap();
        let b = r.to_bag();
        assert!(b.is_relation());
        assert_eq!(b.support(), r);
        assert_eq!(b.unary_size(), 2);
    }

    #[test]
    fn display_is_sorted() {
        let r = Relation::from_u64s(schema(&[0]), [&[9u64][..], &[1][..]]).unwrap();
        let s = r.to_string();
        assert!(s.find("1").unwrap() < s.find("9").unwrap());
    }
}
