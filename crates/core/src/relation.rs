//! Relations: finite sets of tuples (`Tup(X) → {0,1}`).
//!
//! A [`Relation`] is the set-semantics counterpart of [`crate::Bag`]; the
//! paper identifies relations with bags whose multiplicities are 0/1.
//! Relations carry the set-case baseline of Section 5.1 (the universal
//! relation problem) and the supports `R'` of bags.
//!
//! Storage mirrors [`crate::Bag`] minus the multiplicity column: one
//! columnar [`RowStore`] arena whose interning provides set semantics for
//! free, with the same sealed sorted-run invariant.

use crate::pack::{PackedView, PACK_MIN_ROWS};
use crate::store::RowStore;
use crate::{Bag, CoreError, Result, Schema, Value};
use std::fmt;
use std::sync::OnceLock;

/// A finite relation over a fixed schema.
#[derive(Clone)]
pub struct Relation {
    schema: Schema,
    store: RowStore,
    /// True iff rows are laid out in strictly increasing lex order.
    sealed: bool,
    /// Cached packed-word view ([`crate::pack`]); same lifecycle as the
    /// cache on [`crate::Bag`]: reset whenever the arena grows, rebuilt
    /// by the seal, ignored by the content-based `PartialEq`.
    packed: OnceLock<Option<Box<PackedView>>>,
}

impl Relation {
    /// Creates an empty relation over `schema`.
    pub fn new(schema: Schema) -> Self {
        let arity = schema.arity();
        Relation {
            schema,
            store: RowStore::new(arity),
            sealed: true,
            packed: OnceLock::new(),
        }
    }

    /// Creates an empty relation with reserved capacity for `n` tuples.
    pub fn with_capacity(schema: Schema, n: usize) -> Self {
        let arity = schema.arity();
        Relation {
            schema,
            store: RowStore::with_capacity(arity, n),
            sealed: true,
            packed: OnceLock::new(),
        }
    }

    /// Builds a relation from rows (values in schema order). Sealed.
    pub fn from_rows<I, R>(schema: Schema, rows: I) -> Result<Self>
    where
        I: IntoIterator<Item = R>,
        R: AsRef<[Value]>,
    {
        let mut rel = Relation::new(schema);
        for row in rows {
            rel.insert_row(row.as_ref())?;
        }
        rel.seal();
        Ok(rel)
    }

    /// Convenience constructor from plain `u64` rows.
    pub fn from_u64s<'a, I>(schema: Schema, rows: I) -> Result<Self>
    where
        I: IntoIterator<Item = &'a [u64]>,
    {
        let mut rel = Relation::new(schema);
        let mut scratch: Vec<Value> = Vec::new();
        for row in rows {
            scratch.clear();
            scratch.extend(row.iter().copied().map(Value::new));
            rel.insert_row(&scratch)?;
        }
        rel.seal();
        Ok(rel)
    }

    /// Reassembles a sealed relation from a persisted arena — the
    /// snapshot loading seam, mirroring [`Bag::from_sealed_parts`]. The
    /// store must already satisfy the sealed sorted-run invariant
    /// (certified by [`RowStore::from_sorted_rows`]); interning provides
    /// set semantics, so there is no multiplicity column to validate.
    /// Returns `None` on an arity mismatch.
    pub fn from_sealed_store(schema: Schema, store: RowStore) -> Option<Relation> {
        if store.arity() != schema.arity() {
            return None;
        }
        debug_assert!(
            store.iter().zip(store.iter().skip(1)).all(|(a, b)| a < b),
            "from_sealed_store requires a strictly ascending arena"
        );
        Some(Relation {
            schema,
            store,
            sealed: true,
            packed: OnceLock::new(),
        })
    }

    /// The relation over `∅` holding the empty tuple — the identity of the
    /// relational join.
    pub fn unit() -> Self {
        let mut rel = Relation::new(Schema::empty());
        rel.insert_row(&[]).expect("empty row matches empty schema");
        rel
    }

    /// The relation's schema.
    #[inline]
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Inserts a row (values in schema order).
    pub fn insert(&mut self, row: impl AsRef<[Value]>) -> Result<()> {
        self.insert_row(row.as_ref())
    }

    /// Slice-based [`Relation::insert`]: the allocation-free hot path.
    pub fn insert_row(&mut self, row: &[Value]) -> Result<()> {
        if row.len() != self.schema.arity() {
            return Err(CoreError::ArityMismatch {
                expected: self.schema.arity(),
                got: row.len(),
            });
        }
        let last = self.store.len();
        let (id, fresh) = self.store.intern(row);
        if fresh {
            // The arena changed; any cached packed view is stale.
            self.packed = OnceLock::new();
        }
        if fresh && self.sealed && last > 0 {
            let prev = crate::store::RowId(id.0 - 1);
            if self.store.row(prev) >= row {
                self.sealed = false;
            }
        }
        Ok(())
    }

    /// Internal: appends a row the caller guarantees is distinct from all
    /// stored rows (bag supports, join outputs). Leaves the relation
    /// unsealed; callers emitting in sorted order follow up with
    /// [`Relation::mark_sealed`].
    pub(crate) fn push_unique_row(&mut self, row: &[Value]) {
        debug_assert_eq!(row.len(), self.schema.arity());
        self.packed = OnceLock::new();
        self.store.push_unique_unchecked(row);
        self.sealed = false;
    }

    /// Internal: asserts that rows were appended in strictly increasing
    /// lexicographic order (debug-checked).
    pub(crate) fn mark_sealed(&mut self) {
        debug_assert!(
            self.store
                .iter()
                .zip(self.store.iter().skip(1))
                .all(|(a, b)| a < b),
            "mark_sealed on out-of-order rows"
        );
        self.sealed = true;
    }

    /// True iff rows are physically laid out as one sorted columnar run.
    #[inline]
    pub fn is_sealed(&self) -> bool {
        self.sealed
    }

    /// Restores the sorted-run layout (no-op when already sealed).
    /// Equivalent to [`Relation::seal_with`] under a sequential
    /// configuration.
    pub fn seal(&mut self) {
        self.seal_with(&crate::ExecConfig::sequential());
    }

    /// [`Relation::seal`] under an explicit execution configuration:
    /// the id permutation sorts by parallel chunk sorts + pairwise run
    /// merges and the re-layout (row copy + rehash) fans out over shard
    /// workers when `cfg` shards the row set. Byte-identical to the
    /// sequential seal at every thread count.
    pub fn seal_with(&mut self, cfg: &crate::ExecConfig) {
        if self.sealed {
            return;
        }
        let order: Vec<u32> = (0..self.store.len() as u32).collect();
        let order = self.store.sorted_order_with(order, cfg);
        self.store = self.store.reordered_with(&order, cfg);
        self.sealed = true;
        self.rebuild_packed();
    }

    /// The cached packed-word view of the rows ([`crate::pack`]); same
    /// contract as [`crate::Bag::packed_view`].
    pub fn packed_view(&self) -> Option<&PackedView> {
        if !self.sealed {
            return None;
        }
        self.packed
            .get_or_init(|| PackedView::build(&self.store).map(Box::new))
            .as_deref()
    }

    /// True iff a packed view is already materialized; same contract as
    /// [`crate::Bag::packed_ready`].
    pub fn packed_ready(&self) -> bool {
        self.sealed && self.packed.get().is_some_and(|v| v.is_some())
    }

    /// Eagerly (re)builds the packed cache after a seal; skipped below
    /// [`PACK_MIN_ROWS`], mirroring the bag-side policy.
    fn rebuild_packed(&mut self) {
        self.packed = OnceLock::new();
        if self.store.len() >= PACK_MIN_ROWS {
            let _ = self
                .packed
                .set(PackedView::build(&self.store).map(Box::new));
        }
    }

    /// The backing columnar arena, for single-pass scans. Ids are dense
    /// (`0..len()`); on a sealed relation they follow lexicographic row
    /// order.
    #[inline]
    pub fn store(&self) -> &RowStore {
        &self.store
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, row: &[Value]) -> bool {
        self.store.lookup(row).is_some()
    }

    /// Number of tuples.
    #[inline]
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// True iff the relation has no tuples.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// Iterates over rows in storage (id) order.
    pub fn iter(&self) -> impl Iterator<Item = &[Value]> + '_ {
        self.store.iter()
    }

    /// Rows sorted lexicographically, for deterministic output. Free of
    /// sorting work when the relation is sealed.
    pub fn iter_sorted(&self) -> Vec<&[Value]> {
        let mut v: Vec<&[Value]> = self.iter().collect();
        if !self.sealed {
            v.sort_unstable();
        }
        v
    }

    /// Projection `R[Z]` under set semantics (duplicates collapse).
    ///
    /// A single columnar scan through a reused scratch buffer; when `Z`
    /// is a prefix of a sealed relation's schema, deduplication is a
    /// group-by sweep over adjacent rows and the result stays sealed.
    pub fn project(&self, sub: &Schema) -> Result<Relation> {
        let idx = self.schema.projection_indices(sub)?;
        let k = idx.len();
        if self.sealed && crate::tuple::is_prefix_projection(&idx) {
            let mut out = Relation::with_capacity(sub.clone(), self.len().min(1 << 20));
            let arity = self.schema.arity();
            let data = self.store.values();
            let mut prev: Option<usize> = None;
            for id in 0..self.store.len() {
                let off = id * arity;
                if prev.is_none_or(|p| data[p..p + k] != data[off..off + k]) {
                    out.store.push_unique_unchecked(&data[off..off + k]);
                    prev = Some(off);
                }
            }
            out.sealed = true;
            return Ok(out);
        }
        let mut out = Relation::with_capacity(sub.clone(), self.len().min(1 << 20));
        let mut scratch: Vec<Value> = Vec::with_capacity(k);
        for row in self.iter() {
            scratch.clear();
            scratch.extend(idx.iter().map(|&i| row[i]));
            out.insert_row(&scratch)?;
        }
        Ok(out)
    }

    /// Set containment `R ⊆ S` (schemas must match to be comparable).
    pub fn subset_of(&self, other: &Relation) -> bool {
        self.schema == other.schema && self.iter().all(|r| other.contains(r))
    }

    /// Views this relation as a bag with all multiplicities 1.
    pub fn to_bag(&self) -> Bag {
        let mut bag = Bag::with_capacity(self.schema.clone(), self.len());
        for row in self.iter() {
            if self.sealed {
                bag.push_sorted_row(row, 1);
            } else {
                bag.insert_row(row, 1)
                    .expect("arity matches by construction");
            }
        }
        bag
    }
}

impl PartialEq for Relation {
    fn eq(&self, other: &Self) -> bool {
        self.schema == other.schema
            && self.len() == other.len()
            && self.iter().all(|r| other.contains(r))
    }
}

impl Eq for Relation {}

impl fmt::Debug for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.schema)?;
        for row in self.iter_sorted() {
            let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
            writeln!(f, "  {}", cells.join(" "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Attr;

    fn schema(ids: &[u32]) -> Schema {
        Schema::from_attrs(ids.iter().map(|&i| Attr::new(i)))
    }

    #[test]
    fn insert_dedups() {
        let mut r = Relation::new(schema(&[0, 1]));
        r.insert(vec![Value(1), Value(2)]).unwrap();
        r.insert(vec![Value(1), Value(2)]).unwrap();
        assert_eq!(r.len(), 1);
        assert!(r.contains(&[Value(1), Value(2)]));
        assert!(!r.contains(&[Value(2), Value(1)]));
    }

    #[test]
    fn arity_checked() {
        let mut r = Relation::new(schema(&[0, 1]));
        assert!(r.insert(vec![Value(1)]).is_err());
    }

    #[test]
    fn projection_collapses() {
        let r = Relation::from_u64s(schema(&[0, 1]), [&[1u64, 1][..], &[1, 2][..], &[2, 1][..]])
            .unwrap();
        let p = r.project(&schema(&[0])).unwrap();
        assert_eq!(p.len(), 2);
        assert!(p.contains(&[Value(1)]));
        assert!(p.contains(&[Value(2)]));
    }

    #[test]
    fn prefix_and_generic_projections_agree() {
        let rows: [&[u64]; 4] = [&[1, 1], &[1, 2], &[2, 1], &[2, 2]];
        let sealed = Relation::from_u64s(schema(&[0, 1]), rows).unwrap();
        assert!(sealed.is_sealed());
        let mut unsealed = Relation::new(schema(&[0, 1]));
        for row in rows.iter().rev() {
            unsealed
                .insert(row.iter().copied().map(Value::new).collect::<Vec<_>>())
                .unwrap();
        }
        assert!(!unsealed.is_sealed());
        for sub in [schema(&[0]), schema(&[1]), schema(&[0, 1])] {
            assert_eq!(
                sealed.project(&sub).unwrap(),
                unsealed.project(&sub).unwrap(),
                "projection onto {sub}"
            );
        }
    }

    #[test]
    fn unit_relation() {
        let u = Relation::unit();
        assert_eq!(u.len(), 1);
        assert!(u.contains(&[]));
        assert_eq!(u.schema(), &Schema::empty());
    }

    #[test]
    fn subset() {
        let r = Relation::from_u64s(schema(&[0]), [&[1u64][..]]).unwrap();
        let s = Relation::from_u64s(schema(&[0]), [&[1u64][..], &[2][..]]).unwrap();
        assert!(r.subset_of(&s));
        assert!(!s.subset_of(&r));
        let t = Relation::from_u64s(schema(&[1]), [&[1u64][..]]).unwrap();
        assert!(!r.subset_of(&t)); // different schema
    }

    #[test]
    fn to_bag_and_back() {
        let r = Relation::from_u64s(schema(&[0, 1]), [&[1u64, 2][..], &[3, 4][..]]).unwrap();
        let b = r.to_bag();
        assert!(b.is_relation());
        assert_eq!(b.support(), r);
        assert_eq!(b.unary_size(), 2);
    }

    #[test]
    fn display_is_sorted() {
        let r = Relation::from_u64s(schema(&[0]), [&[9u64][..], &[1][..]]).unwrap();
        let s = r.to_string();
        assert!(s.find("1").unwrap() < s.find("9").unwrap());
    }

    #[test]
    fn seal_with_matches_sequential_seal() {
        let mut rel = Relation::new(schema(&[0, 1]));
        for i in (0..300u64).rev() {
            rel.insert(vec![Value(i % 19), Value(i % 11)]).unwrap();
        }
        assert!(!rel.is_sealed());
        let mut seq = rel.clone();
        seq.seal();
        for threads in [2usize, 4, 8] {
            let mut par = rel.clone();
            par.seal_with(
                &crate::ExecConfig::builder()
                    .threads(threads)
                    .min_parallel_support(1)
                    .build()
                    .unwrap(),
            );
            assert!(par.is_sealed());
            let seq_rows: Vec<&[Value]> = seq.iter().collect();
            let par_rows: Vec<&[Value]> = par.iter().collect();
            assert_eq!(par_rows, seq_rows, "threads = {threads}");
        }
    }

    #[test]
    fn seal_sorts_rows() {
        let mut r = Relation::new(schema(&[0]));
        for v in [5u64, 1, 9] {
            r.insert(vec![Value(v)]).unwrap();
        }
        assert!(!r.is_sealed());
        r.seal();
        assert!(r.is_sealed());
        let rows: Vec<u64> = r.iter().map(|row| row[0].get()).collect();
        assert_eq!(rows, vec![1, 5, 9]);
        assert!(r.contains(&[Value(5)]));
    }
}
