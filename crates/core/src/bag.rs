//! Bags: finite multisets of tuples (`Tup(X) → Z≥0`).
//!
//! A [`Bag`] stores only its support — tuples with non-zero multiplicity —
//! as a hash map from rows to `u64` counts. This matches the paper's
//! convention that a bag "can be viewed as a finite set of elements of the
//! form `t : R(t)`".
//!
//! The central operation is the **marginal** `R[Z]` of Equation (2):
//! ```text
//! R(t) = Σ { R(r) : r ∈ R', r[Z] = t }        for Z ⊆ X, t a Z-tuple
//! ```
//! computed by [`Bag::marginal`]. Two easy facts from Section 2, both
//! enforced by tests and property tests:
//!
//! * `R'[Z] = R[Z]'` (support of marginal = projection of support), and
//! * `R[Z][W] = R[W]` for `W ⊆ Z ⊆ X` (marginals commute with nesting).

use crate::tuple::project_row;
use crate::{CoreError, FxHashMap, Relation, Result, Row, Schema, Tuple, Value};
use std::fmt;

/// A finite bag (multiset) of tuples over a fixed schema.
#[derive(Clone)]
pub struct Bag {
    schema: Schema,
    rows: FxHashMap<Row, u64>,
}

impl Bag {
    /// Creates an empty bag over `schema`.
    pub fn new(schema: Schema) -> Self {
        Bag { schema, rows: FxHashMap::default() }
    }

    /// Creates an empty bag with reserved capacity for `n` support tuples.
    pub fn with_capacity(schema: Schema, n: usize) -> Self {
        let mut rows = FxHashMap::default();
        rows.reserve(n);
        Bag { schema, rows }
    }

    /// Builds a bag from `(row, multiplicity)` pairs; multiplicities of
    /// equal rows accumulate (checked).
    pub fn from_rows<I, R>(schema: Schema, rows: I) -> Result<Self>
    where
        I: IntoIterator<Item = (R, u64)>,
        R: Into<Vec<Value>>,
    {
        let mut bag = Bag::new(schema);
        for (row, m) in rows {
            bag.insert(row, m)?;
        }
        Ok(bag)
    }

    /// Convenience constructor from plain `u64` rows, used pervasively in
    /// tests and examples: `Bag::from_u64s(schema, [(&[1,2], 3), …])`.
    pub fn from_u64s<'a, I>(schema: Schema, rows: I) -> Result<Self>
    where
        I: IntoIterator<Item = (&'a [u64], u64)>,
    {
        let mut bag = Bag::new(schema);
        for (row, m) in rows {
            let vals: Vec<Value> = row.iter().copied().map(Value::new).collect();
            bag.insert(vals, m)?;
        }
        Ok(bag)
    }

    /// The bag holding only the empty tuple with multiplicity `m`
    /// (the marginal of any bag with `‖R‖u = m` on the empty schema).
    pub fn of_empty_tuple(m: u64) -> Self {
        let mut bag = Bag::new(Schema::empty());
        if m > 0 {
            bag.rows.insert(Box::new([]), m);
        }
        bag
    }

    /// The bag's schema.
    #[inline]
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Adds `mult` occurrences of `row` (values in schema order).
    ///
    /// Inserting multiplicity `0` is a no-op, preserving the invariant
    /// that the stored key set is exactly the support.
    pub fn insert(&mut self, row: impl Into<Vec<Value>>, mult: u64) -> Result<()> {
        let row: Vec<Value> = row.into();
        if row.len() != self.schema.arity() {
            return Err(CoreError::ArityMismatch {
                expected: self.schema.arity(),
                got: row.len(),
            });
        }
        if mult == 0 {
            return Ok(());
        }
        let slot = self.rows.entry(row.into_boxed_slice()).or_insert(0);
        *slot = slot.checked_add(mult).ok_or(CoreError::MultiplicityOverflow)?;
        Ok(())
    }

    /// Adds `mult` occurrences of a [`Tuple`] (must match the schema).
    pub fn insert_tuple(&mut self, t: &Tuple, mult: u64) -> Result<()> {
        if t.schema() != &self.schema {
            return Err(CoreError::SchemaMismatch {
                left: t.schema().clone(),
                right: self.schema.clone(),
            });
        }
        self.insert(t.row().to_vec(), mult)
    }

    /// Sets the multiplicity of `row` exactly (0 removes it).
    pub fn set(&mut self, row: impl Into<Vec<Value>>, mult: u64) -> Result<()> {
        let row: Vec<Value> = row.into();
        if row.len() != self.schema.arity() {
            return Err(CoreError::ArityMismatch {
                expected: self.schema.arity(),
                got: row.len(),
            });
        }
        let key = row.into_boxed_slice();
        if mult == 0 {
            self.rows.remove(&key);
        } else {
            self.rows.insert(key, mult);
        }
        Ok(())
    }

    /// The multiplicity `R(t)` of a row (0 if absent).
    #[inline]
    pub fn multiplicity(&self, row: &[Value]) -> u64 {
        self.rows.get(row).copied().unwrap_or(0)
    }

    /// `‖R‖supp`: the number of support tuples.
    #[inline]
    pub fn support_size(&self) -> usize {
        self.rows.len()
    }

    /// True iff the bag is empty (all multiplicities zero).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// `‖R‖mu`: the largest multiplicity (0 for the empty bag).
    pub fn multiplicity_bound(&self) -> u64 {
        self.rows.values().copied().max().unwrap_or(0)
    }

    /// `‖R‖mb`: the largest number of bits over all multiplicities, i.e.
    /// `max ⌈log₂(R(r)+1)⌉` (0 for the empty bag).
    pub fn multiplicity_size(&self) -> u32 {
        self.rows.values().map(|&m| bits(m)).max().unwrap_or(0)
    }

    /// `‖R‖u = Σ R(r)`: the multiset cardinality. Returned as `u128`
    /// because sums of `u64` multiplicities can exceed `u64::MAX`.
    pub fn unary_size(&self) -> u128 {
        self.rows.values().map(|&m| m as u128).sum()
    }

    /// `‖R‖b = Σ ⌈log₂(R(r)+1)⌉`: the bit-size of the multiplicity column.
    pub fn binary_size(&self) -> u64 {
        self.rows.values().map(|&m| bits(m) as u64).sum()
    }

    /// Iterates over `(row, multiplicity)` in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&[Value], u64)> + '_ {
        self.rows.iter().map(|(r, &m)| (&**r, m))
    }

    /// Rows with multiplicities, sorted lexicographically — use whenever
    /// deterministic order matters (display, harness output).
    pub fn iter_sorted(&self) -> Vec<(&[Value], u64)> {
        let mut v: Vec<(&[Value], u64)> = self.iter().collect();
        v.sort_unstable_by(|a, b| a.0.cmp(b.0));
        v
    }

    /// The support `Supp(R)` as a relation over the same schema.
    pub fn support(&self) -> Relation {
        let mut rel = Relation::new(self.schema.clone());
        for row in self.rows.keys() {
            rel.insert_row_unchecked(row.clone());
        }
        rel
    }

    /// The marginal `R[Z]` of Equation (2) of the paper.
    ///
    /// Requires `Z ⊆ X`; multiplicities of collapsing tuples are summed
    /// with overflow checking.
    pub fn marginal(&self, sub: &Schema) -> Result<Bag> {
        let idx = self.schema.projection_indices(sub)?;
        let mut out = Bag::with_capacity(sub.clone(), self.rows.len());
        for (row, &m) in &self.rows {
            let key = project_row(row, &idx);
            let slot = out.rows.entry(key).or_insert(0);
            *slot = slot.checked_add(m).ok_or(CoreError::MultiplicityOverflow)?;
        }
        Ok(out)
    }

    /// Bag containment `R ⊆ᵇ S`: `R(t) ≤ S(t)` for every tuple.
    ///
    /// Returns `false` (rather than an error) when the schemas differ,
    /// since bags over different schemas are simply incomparable.
    pub fn contained_in(&self, other: &Bag) -> bool {
        self.schema == other.schema
            && self.rows.iter().all(|(r, &m)| m <= other.multiplicity(r))
    }

    /// True iff every multiplicity is ≤ 1 (the bag "is" a relation).
    pub fn is_relation(&self) -> bool {
        self.rows.values().all(|&m| m <= 1)
    }

    /// Pointwise sum of two bags over the same schema (checked).
    pub fn sum(&self, other: &Bag) -> Result<Bag> {
        if self.schema != other.schema {
            return Err(CoreError::SchemaMismatch {
                left: self.schema.clone(),
                right: other.schema.clone(),
            });
        }
        let mut out = self.clone();
        for (row, m) in other.iter() {
            out.insert(row.to_vec(), m)?;
        }
        Ok(out)
    }

    /// Multiplies every multiplicity by `k` (checked). `k = 0` empties
    /// the bag.
    pub fn scale(&self, k: u64) -> Result<Bag> {
        let mut out = Bag::with_capacity(self.schema.clone(), self.rows.len());
        if k == 0 {
            return Ok(out);
        }
        for (row, m) in self.iter() {
            let mk = m.checked_mul(k).ok_or(CoreError::MultiplicityOverflow)?;
            out.rows.insert(row.to_vec().into_boxed_slice(), mk);
        }
        Ok(out)
    }

    /// Renames attributes via `f`, keeping rows. The map must be
    /// injective on the schema (checked via resulting arity).
    ///
    /// Used by the paper's reduction in Lemma 6, which replaces
    /// `R_{n-1}(A_{n-1} A_1)` by "an identical copy of schema
    /// `A_{n-1} A_n`".
    pub fn rename(&self, f: impl Fn(crate::Attr) -> crate::Attr) -> Result<Bag> {
        let new_attrs: Vec<crate::Attr> = self.schema.iter().map(&f).collect();
        let new_schema = Schema::from_attrs(new_attrs.iter().copied());
        if new_schema.arity() != self.schema.arity() {
            return Err(CoreError::DuplicateAttr(
                // Find one collision for the error message.
                new_attrs
                    .iter()
                    .copied()
                    .find(|a| new_attrs.iter().filter(|&&b| b == *a).count() > 1)
                    .unwrap_or(crate::Attr::new(0)),
            ));
        }
        // position i of the old schema maps to position of f(old[i]) in new.
        let mut out = Bag::with_capacity(new_schema.clone(), self.rows.len());
        let old_attrs = self.schema.attrs();
        let mut perm = vec![0usize; old_attrs.len()];
        for (i, &a) in old_attrs.iter().enumerate() {
            perm[i] = new_schema.position(f(a)).expect("renamed attr in new schema");
        }
        for (row, m) in self.iter() {
            let mut new_row = vec![Value::new(0); row.len()];
            for (i, &v) in row.iter().enumerate() {
                new_row[perm[i]] = v;
            }
            out.rows.insert(new_row.into_boxed_slice(), m);
        }
        Ok(out)
    }
}

/// `⌈log₂(m+1)⌉`: bits needed to write `m` in binary (0 for m = 0).
#[inline]
pub fn bits(m: u64) -> u32 {
    64 - m.leading_zeros()
}

impl PartialEq for Bag {
    fn eq(&self, other: &Self) -> bool {
        self.schema == other.schema && self.rows == other.rows
    }
}

impl Eq for Bag {}

impl fmt::Debug for Bag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Bag {
    /// Tabular form mirroring the paper's `A B # / a b : m` notation.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} #", self.schema)?;
        for (row, m) in self.iter_sorted() {
            let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
            writeln!(f, "  {} : {}", cells.join(" "), m)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Attr;

    fn schema(ids: &[u32]) -> Schema {
        Schema::from_attrs(ids.iter().map(|&i| Attr::new(i)))
    }

    /// The bag R(A,B) = {(a1,b1):2, (a2,b2):1, (a3,b3):5} from Section 2.
    fn section2_bag() -> Bag {
        Bag::from_u64s(schema(&[0, 1]), [(&[1u64, 1][..], 2), (&[2, 2][..], 1), (&[3, 3][..], 5)])
            .unwrap()
    }

    #[test]
    fn insert_accumulates_and_skips_zero() {
        let mut b = Bag::new(schema(&[0]));
        b.insert(vec![Value(1)], 2).unwrap();
        b.insert(vec![Value(1)], 3).unwrap();
        b.insert(vec![Value(2)], 0).unwrap();
        assert_eq!(b.multiplicity(&[Value(1)]), 5);
        assert_eq!(b.multiplicity(&[Value(2)]), 0);
        assert_eq!(b.support_size(), 1);
    }

    #[test]
    fn insert_checks_arity() {
        let mut b = Bag::new(schema(&[0, 1]));
        assert!(b.insert(vec![Value(1)], 1).is_err());
    }

    #[test]
    fn overflow_is_detected() {
        let mut b = Bag::new(schema(&[0]));
        b.insert(vec![Value(1)], u64::MAX).unwrap();
        assert_eq!(b.insert(vec![Value(1)], 1), Err(CoreError::MultiplicityOverflow));
        // marginal overflow: two rows collapsing to one
        let mut c = Bag::new(schema(&[0, 1]));
        c.insert(vec![Value(1), Value(1)], u64::MAX).unwrap();
        c.insert(vec![Value(1), Value(2)], 1).unwrap();
        assert_eq!(c.marginal(&schema(&[0])).unwrap_err(), CoreError::MultiplicityOverflow);
    }

    #[test]
    fn set_zero_removes() {
        let mut b = section2_bag();
        b.set(vec![Value(1), Value(1)], 0).unwrap();
        assert_eq!(b.support_size(), 2);
        b.set(vec![Value(2), Value(2)], 7).unwrap();
        assert_eq!(b.multiplicity(&[Value(2), Value(2)]), 7);
    }

    #[test]
    fn norms_match_definitions() {
        let b = section2_bag();
        assert_eq!(b.support_size(), 3); // ‖R‖supp
        assert_eq!(b.multiplicity_bound(), 5); // ‖R‖mu
        assert_eq!(b.multiplicity_size(), 3); // ⌈log2(5+1)⌉ = 3
        assert_eq!(b.unary_size(), 8); // 2+1+5
        assert_eq!(b.binary_size(), 2 + 1 + 3); // bits(2)+bits(1)+bits(5)
    }

    #[test]
    fn bits_function() {
        assert_eq!(bits(0), 0);
        assert_eq!(bits(1), 1);
        assert_eq!(bits(2), 2);
        assert_eq!(bits(3), 2);
        assert_eq!(bits(4), 3);
        assert_eq!(bits(u64::MAX), 64);
    }

    #[test]
    fn marginal_on_full_schema_is_identity() {
        let b = section2_bag();
        assert_eq!(b.marginal(b.schema()).unwrap(), b);
    }

    #[test]
    fn marginal_sums_multiplicities() {
        // R(A,B) with two tuples sharing the same A-value.
        let b = Bag::from_u64s(
            schema(&[0, 1]),
            [(&[1u64, 1][..], 2), (&[1, 2][..], 3), (&[2, 1][..], 5)],
        )
        .unwrap();
        let m = b.marginal(&schema(&[0])).unwrap();
        assert_eq!(m.multiplicity(&[Value(1)]), 5);
        assert_eq!(m.multiplicity(&[Value(2)]), 5);
    }

    #[test]
    fn marginal_on_empty_schema_is_total_count() {
        let b = section2_bag();
        let m = b.marginal(&Schema::empty()).unwrap();
        assert_eq!(m.multiplicity(&[]), 8);
        assert_eq!(m, Bag::of_empty_tuple(8));
    }

    #[test]
    fn marginal_requires_subschema() {
        let b = section2_bag();
        assert!(b.marginal(&schema(&[7])).is_err());
    }

    #[test]
    fn nested_marginals_commute() {
        // R[Z][W] = R[W] for W ⊆ Z ⊆ X
        let x = schema(&[0, 1, 2]);
        let b = Bag::from_u64s(
            x,
            [(&[1u64, 1, 1][..], 1), (&[1, 1, 2][..], 2), (&[1, 2, 1][..], 4), (&[2, 2, 2][..], 8)],
        )
        .unwrap();
        let z = schema(&[0, 1]);
        let w = schema(&[0]);
        assert_eq!(b.marginal(&z).unwrap().marginal(&w).unwrap(), b.marginal(&w).unwrap());
    }

    #[test]
    fn support_of_marginal_is_projection_of_support() {
        let b = section2_bag();
        let z = schema(&[0]);
        let lhs = b.marginal(&z).unwrap().support();
        let rhs = b.support().project(&z).unwrap();
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn containment() {
        let b = section2_bag();
        let mut c = b.clone();
        c.insert(vec![Value(9), Value(9)], 1).unwrap();
        assert!(b.contained_in(&c));
        assert!(!c.contained_in(&b));
        assert!(b.contained_in(&b));
        // different schemas are incomparable
        let d = Bag::new(schema(&[5]));
        assert!(!b.contained_in(&d));
        // the empty bag over the same schema is contained in anything
        assert!(Bag::new(schema(&[0, 1])).contained_in(&b));
    }

    #[test]
    fn sum_and_scale() {
        let b = section2_bag();
        let two_b = b.sum(&b).unwrap();
        assert_eq!(two_b, b.scale(2).unwrap());
        assert_eq!(b.scale(0).unwrap().support_size(), 0);
        assert!(b.scale(u64::MAX).is_err());
    }

    #[test]
    fn is_relation_detects_multiplicities() {
        assert!(!section2_bag().is_relation());
        let r = Bag::from_u64s(schema(&[0]), [(&[1u64][..], 1), (&[2][..], 1)]).unwrap();
        assert!(r.is_relation());
        assert!(Bag::new(schema(&[0])).is_relation());
    }

    #[test]
    fn rename_permutes_columns() {
        // swap A0 <-> A1: row (a,b) becomes (b,a) in the new sorted order.
        let b = Bag::from_u64s(schema(&[0, 1]), [(&[1u64, 2][..], 3)]).unwrap();
        let r = b
            .rename(|a| if a == Attr(0) { Attr(1) } else { Attr(0) })
            .unwrap();
        assert_eq!(r.multiplicity(&[Value(2), Value(1)]), 3);
        // non-injective rename is rejected
        assert!(b.rename(|_| Attr(7)).is_err());
    }

    #[test]
    fn rename_to_fresh_attr() {
        // the Lemma 6 move: R(A_{n-1}, A_1) -> R(A_{n-1}, A_n)
        let b = Bag::from_u64s(schema(&[0, 3]), [(&[1u64, 5][..], 2)]).unwrap();
        let r = b.rename(|a| if a == Attr(0) { Attr(4) } else { a }).unwrap();
        assert_eq!(r.schema(), &schema(&[3, 4]));
        // old row was (A0=1, A3=5); new row is (A3=5, A4=1)
        assert_eq!(r.multiplicity(&[Value(5), Value(1)]), 2);
    }

    #[test]
    fn display_sorted() {
        let b = section2_bag();
        let s = b.to_string();
        let i1 = s.find("1 1 : 2").unwrap();
        let i2 = s.find("2 2 : 1").unwrap();
        let i3 = s.find("3 3 : 5").unwrap();
        assert!(i1 < i2 && i2 < i3);
    }

    #[test]
    fn of_empty_tuple_zero_is_empty() {
        assert!(Bag::of_empty_tuple(0).is_empty());
        assert_eq!(Bag::of_empty_tuple(3).unary_size(), 3);
    }
}
