//! Bags: finite multisets of tuples (`Tup(X) → Z≥0`).
//!
//! A [`Bag`] stores only its support — tuples with non-zero multiplicity —
//! as a **columnar, arena-backed run**: all distinct rows live in one
//! contiguous [`RowStore`] with a parallel `Vec<u64>` multiplicity column.
//! This matches the paper's convention that a bag "can be viewed as a
//! finite set of elements of the form `t : R(t)`" while keeping the hot
//! paths (marginals, joins, flow-network construction) free of per-tuple
//! heap allocations.
//!
//! Storage invariants:
//!
//! * each distinct row is interned exactly once; `mults[id]` is its
//!   multiplicity (`0` marks a tombstone left by [`Bag::set`]);
//! * a **sealed** bag ([`Bag::is_sealed`]) additionally has its rows laid
//!   out in strictly increasing lexicographic order with no tombstones —
//!   the "sorted run" at-rest form that bulk constructors produce and
//!   [`Bag::seal`] restores after mutation;
//! * multiplicity arithmetic is checked ([`CoreError::MultiplicityOverflow`]).
//!
//! The central operation is the **marginal** `R[Z]` of Equation (2):
//! ```text
//! R(t) = Σ { R(r) : r ∈ R', r[Z] = t }        for Z ⊆ X, t a Z-tuple
//! ```
//! computed by [`Bag::marginal`] as a single columnar scan — and, when
//! `Z` is a prefix of a sealed bag's schema, as a pure group-by sweep
//! with no hashing at all. Two easy facts from Section 2, both enforced
//! by tests and property tests:
//!
//! * `R'[Z] = R[Z]'` (support of marginal = projection of support), and
//! * `R[Z][W] = R[W]` for `W ⊆ Z ⊆ X` (marginals commute with nesting).

use crate::exec::{shard_ranges, ExecConfig, ShardRun, ShardedRowStore};
use crate::pack::{PackedView, RowOrd, PACK_MIN_ROWS};
use crate::store::{RowId, RowStore};
use crate::{CoreError, Relation, Result, Schema, Tuple, Value};
use std::fmt;
use std::sync::OnceLock;

/// A finite bag (multiset) of tuples over a fixed schema.
#[derive(Clone)]
pub struct Bag {
    schema: Schema,
    store: RowStore,
    /// Parallel to `store` ids; `0` is a tombstone (row removed by `set`).
    mults: Vec<u64>,
    /// Number of ids with non-zero multiplicity (`‖R‖supp`).
    live: usize,
    /// True iff rows are in strictly increasing lex order, tombstone-free.
    sealed: bool,
    /// Packed-word view of the rows ([`crate::pack`]), cached while the
    /// row arena is unchanged. Reset (to an unset `OnceLock`) by every
    /// path that appends to the store; rebuilt eagerly by the seal and
    /// lazily by [`Bag::packed_view`]. `Some(None)` records that no
    /// encoding fits. Deliberately ignored by `PartialEq` (content
    /// equality) — both impls below are field-explicit. Boxed so the
    /// cache costs one pointer on every (frequently moved) `Bag`.
    packed: OnceLock<Option<Box<PackedView>>>,
}

impl Bag {
    /// Creates an empty bag over `schema`.
    pub fn new(schema: Schema) -> Self {
        let arity = schema.arity();
        Bag {
            schema,
            store: RowStore::new(arity),
            mults: Vec::new(),
            live: 0,
            sealed: true,
            packed: OnceLock::new(),
        }
    }

    /// Creates an empty bag with reserved capacity for `n` support tuples.
    pub fn with_capacity(schema: Schema, n: usize) -> Self {
        let arity = schema.arity();
        Bag {
            schema,
            store: RowStore::with_capacity(arity, n),
            mults: Vec::with_capacity(n),
            live: 0,
            sealed: true,
            packed: OnceLock::new(),
        }
    }

    /// Builds a bag from `(row, multiplicity)` pairs; multiplicities of
    /// equal rows accumulate (checked). The result is sealed.
    pub fn from_rows<I, R>(schema: Schema, rows: I) -> Result<Self>
    where
        I: IntoIterator<Item = (R, u64)>,
        R: AsRef<[Value]>,
    {
        let mut bag = Bag::new(schema);
        for (row, m) in rows {
            bag.insert_row(row.as_ref(), m)?;
        }
        bag.seal();
        Ok(bag)
    }

    /// Convenience constructor from plain `u64` rows, used pervasively in
    /// tests and examples: `Bag::from_u64s(schema, [(&[1,2], 3), …])`.
    pub fn from_u64s<'a, I>(schema: Schema, rows: I) -> Result<Self>
    where
        I: IntoIterator<Item = (&'a [u64], u64)>,
    {
        let mut bag = Bag::new(schema);
        let mut scratch: Vec<Value> = Vec::new();
        for (row, m) in rows {
            scratch.clear();
            scratch.extend(row.iter().copied().map(Value::new));
            bag.insert_row(&scratch, m)?;
        }
        bag.seal();
        Ok(bag)
    }

    /// The bag holding only the empty tuple with multiplicity `m`
    /// (the marginal of any bag with `‖R‖u = m` on the empty schema).
    pub fn of_empty_tuple(m: u64) -> Self {
        let mut bag = Bag::new(Schema::empty());
        if m > 0 {
            bag.insert_row(&[], m)
                .expect("empty row matches empty schema");
        }
        bag
    }

    /// The bag's schema.
    #[inline]
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Adds `mult` occurrences of `row` (values in schema order).
    ///
    /// Inserting multiplicity `0` is a no-op, preserving the invariant
    /// that the stored support is exactly the rows with `R(t) > 0`.
    ///
    /// Accepts anything viewable as a `&[Value]` slice (`Vec`, array,
    /// slice); the row is copied into the columnar arena only when it is
    /// new, so no intermediate `Box<[Value]>` is ever built.
    pub fn insert(&mut self, row: impl AsRef<[Value]>, mult: u64) -> Result<()> {
        self.insert_row(row.as_ref(), mult)
    }

    /// Slice-based [`Bag::insert`]: the allocation-free hot path.
    pub fn insert_row(&mut self, row: &[Value], mult: u64) -> Result<()> {
        if row.len() != self.schema.arity() {
            return Err(CoreError::ArityMismatch {
                expected: self.schema.arity(),
                got: row.len(),
            });
        }
        if mult == 0 {
            return Ok(());
        }
        if let Some(id) = self.intern_row(row, mult) {
            let slot = &mut self.mults[id.index()];
            if *slot == 0 {
                self.live += 1;
                // Reviving a tombstone: row order unchanged, but a sealed
                // bag has no tombstones, so `sealed` is already false.
            }
            *slot = slot
                .checked_add(mult)
                .ok_or(CoreError::MultiplicityOverflow)?;
        }
        Ok(())
    }

    /// Interns `row`; when fresh, records `mult`, bumps `live`, and
    /// updates the sorted-run tracking (a fresh append keeps the run
    /// sealed only when it extends it). Returns the id of an already
    /// present row for the caller to update.
    fn intern_row(&mut self, row: &[Value], mult: u64) -> Option<RowId> {
        let last = self.store.len();
        let (id, fresh) = self.store.intern(row);
        if !fresh {
            return Some(id);
        }
        // The arena changed; any cached packed view is stale (even when
        // the append keeps the bag sealed).
        self.packed = OnceLock::new();
        self.mults.push(mult);
        self.live += 1;
        if self.sealed && last > 0 && self.store.row(RowId(id.0 - 1)) >= row {
            self.sealed = false;
        }
        None
    }

    /// Adds `mult` occurrences of a [`Tuple`] (must match the schema).
    pub fn insert_tuple(&mut self, t: &Tuple, mult: u64) -> Result<()> {
        if t.schema() != &self.schema {
            return Err(CoreError::SchemaMismatch {
                left: t.schema().clone(),
                right: self.schema.clone(),
            });
        }
        self.insert_row(t.row(), mult)
    }

    /// Sets the multiplicity of `row` exactly (0 removes it).
    pub fn set(&mut self, row: impl AsRef<[Value]>, mult: u64) -> Result<()> {
        let row = row.as_ref();
        if row.len() != self.schema.arity() {
            return Err(CoreError::ArityMismatch {
                expected: self.schema.arity(),
                got: row.len(),
            });
        }
        if mult == 0 {
            // Tombstone without interning rows we never stored.
            if let Some(id) = self.store.lookup(row) {
                if self.mults[id.index()] > 0 {
                    self.mults[id.index()] = 0;
                    self.live -= 1;
                    self.sealed = false;
                }
            }
            return Ok(());
        }
        if let Some(id) = self.intern_row(row, mult) {
            if self.mults[id.index()] == 0 {
                self.live += 1;
            }
            self.mults[id.index()] = mult;
        }
        Ok(())
    }

    /// The multiplicity `R(t)` of a row (0 if absent).
    #[inline]
    pub fn multiplicity(&self, row: &[Value]) -> u64 {
        match self.store.lookup(row) {
            Some(id) => self.mults[id.index()],
            None => 0,
        }
    }

    /// `‖R‖supp`: the number of support tuples.
    #[inline]
    pub fn support_size(&self) -> usize {
        self.live
    }

    /// True iff the bag is empty (all multiplicities zero).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// `‖R‖mu`: the largest multiplicity (0 for the empty bag).
    pub fn multiplicity_bound(&self) -> u64 {
        self.mults.iter().copied().max().unwrap_or(0)
    }

    /// `‖R‖mb`: the largest number of bits over all multiplicities, i.e.
    /// `max ⌈log₂(R(r)+1)⌉` (0 for the empty bag).
    pub fn multiplicity_size(&self) -> u32 {
        bits(self.multiplicity_bound())
    }

    /// `‖R‖u = Σ R(r)`: the multiset cardinality. Returned as `u128`
    /// because sums of `u64` multiplicities can exceed `u64::MAX`.
    pub fn unary_size(&self) -> u128 {
        self.mults.iter().map(|&m| m as u128).sum()
    }

    /// `‖R‖b = Σ ⌈log₂(R(r)+1)⌉`: the bit-size of the multiplicity column.
    pub fn binary_size(&self) -> u64 {
        self.mults.iter().map(|&m| bits(m) as u64).sum()
    }

    /// Iterates over `(row, multiplicity)` in storage (id) order.
    pub fn iter(&self) -> impl Iterator<Item = (&[Value], u64)> + '_ {
        self.store
            .iter()
            .zip(self.mults.iter())
            .filter_map(|(r, &m)| (m > 0).then_some((r, m)))
    }

    /// Rows with multiplicities in lexicographic order — use whenever
    /// deterministic order matters (display, harness output, network
    /// vertex numbering). On a **sealed** bag this walks the sorted run
    /// directly with **no allocation**; only an unsealed bag pays for a
    /// sort of a scratch reference vector. Callers that index rows by
    /// sorted position want [`Bag::sorted_rows`] instead.
    pub fn iter_sorted(&self) -> SortedRows<'_> {
        if self.sealed {
            SortedRows(SortedRowsInner::Sealed {
                store: &self.store,
                mults: &self.mults,
                next: 0,
            })
        } else {
            let mut v: Vec<(&[Value], u64)> = self.iter().collect();
            v.sort_unstable_by(|a, b| a.0.cmp(b.0));
            SortedRows(SortedRowsInner::Sorted(v.into_iter()))
        }
    }

    /// Materialized [`Bag::iter_sorted`], for callers that need random
    /// access by sorted position (flow-network vertex numbering, random
    /// perturbations).
    pub fn sorted_rows(&self) -> Vec<(&[Value], u64)> {
        self.iter_sorted().collect()
    }

    /// True iff rows are physically laid out as one lexicographically
    /// sorted, tombstone-free columnar run.
    #[inline]
    pub fn is_sealed(&self) -> bool {
        self.sealed
    }

    /// Restores the sorted-run invariant: rows are re-laid-out in
    /// lexicographic order and tombstones are compacted away.
    ///
    /// `O(n log n)` when unsorted; a no-op on sealed bags. Sealing makes
    /// [`Bag::iter_sorted`] allocation-free, lets prefix marginals and
    /// merge joins skip their sort step, and enables key-range sharding
    /// ([`crate::exec`]). Equivalent to [`Bag::seal_with`] under a
    /// sequential configuration.
    pub fn seal(&mut self) {
        self.seal_with(&ExecConfig::sequential());
    }

    /// [`Bag::seal`] under an explicit execution configuration: both
    /// halves of the seal fan out over the work-stealing executor when
    /// `cfg` shards the live row set. The id permutation is sorted by
    /// parallel chunk sorts + pairwise run merges
    /// ([`crate::exec::parallel_sort_by`]), and the re-layout copies
    /// rows (and hashes them) on shard workers before splicing the runs
    /// back in ascending order. The resulting bag is byte-identical to
    /// the sequential seal at every thread count — interned rows are
    /// distinct, so the sorted order is total.
    pub fn seal_with(&mut self, cfg: &ExecConfig) {
        // Infallible entry point: runs ungoverned (no deadline poll) so
        // the only possible failure is a worker panic, which re-raises
        // with its task index attached. Deadline-governed callers use
        // [`Bag::try_seal_with`].
        let ungoverned = cfg.clone().with_deadline(crate::Deadline::NONE);
        if let Err(e) = self.try_seal_with(&ungoverned) {
            panic!("{e}");
        }
    }

    /// [`Bag::seal_with`] under governance: polls `cfg`'s
    /// [`crate::Deadline`] at shard-chunk boundaries and contains worker
    /// panics. On any error the bag is left **exactly** as it was —
    /// unsealed, layout, multiplicities, and packed cache untouched —
    /// because the seal only commits by whole-value replacement after
    /// every shard has succeeded.
    ///
    /// # Errors
    ///
    /// [`CoreError::Aborted`] when the deadline fires mid-seal;
    /// [`CoreError::WorkerPanicked`] when a re-layout worker panics.
    pub fn try_seal_with(&mut self, cfg: &ExecConfig) -> Result<()> {
        if self.sealed {
            return Ok(());
        }
        crate::fault::fire("bag::seal");
        let order: Vec<u32> = (0..self.store.len() as u32)
            .filter(|&i| self.mults[i as usize] > 0)
            .collect();
        let shards = cfg.shards_for(order.len());
        let order = self.store.sorted_order_with(order, cfg);
        if shards <= 1 {
            if let Some(reason) = cfg.deadline().poll() {
                return Err(CoreError::Aborted(reason));
            }
            let mults = order.iter().map(|&i| self.mults[i as usize]).collect();
            self.store = self.store.reordered(&order);
            self.mults = mults;
            self.sealed = true;
            self.rebuild_packed();
            return Ok(());
        }
        // Parallel re-layout: plain index ranges over the sorted
        // permutation (rows are independent); each worker copies rows
        // and multiplicities into a ShardRun, hashing on the worker.
        let arity = self.schema.arity();
        let ranges = shard_ranges(order.len(), shards, |_| false);
        let order = &order;
        let runs = crate::exec::try_run_shards(cfg, ranges, |range| {
            let mut run = ShardRun::with_capacity(arity, range.len());
            for &id in &order[range] {
                run.push(self.store.row(RowId(id)), self.mults[id as usize]);
            }
            run
        })?;
        *self = Bag::from_shard_runs(
            self.schema.clone(),
            ShardedRowStore::from_runs(arity, runs),
            true,
        );
        self.rebuild_packed();
        Ok(())
    }

    /// The cached packed-word view of the rows ([`crate::pack`]): one
    /// order-preserving integer per row, making row compares single
    /// integer compares. `None` while the bag is unsealed (the view
    /// tracks the at-rest layout) or when no encoding fits the row
    /// values. Built on first demand and cached until the row arena next
    /// changes.
    pub fn packed_view(&self) -> Option<&PackedView> {
        if !self.sealed {
            return None;
        }
        self.packed
            .get_or_init(|| PackedView::build(&self.store).map(Box::new))
            .as_deref()
    }

    /// True iff a packed view is already materialized (without building
    /// one): the bag is sealed and the last seal produced a view. Join
    /// planning treats such a side as cheaper to merge.
    pub fn packed_ready(&self) -> bool {
        self.sealed && self.packed.get().is_some_and(|v| v.is_some())
    }

    /// Eagerly (re)builds the packed cache after a seal laid the rows
    /// out. Skipped below [`PACK_MIN_ROWS`] — tiny bags take the hash
    /// join anyway, and the lazy [`Bag::packed_view`] path still covers
    /// direct requests.
    fn rebuild_packed(&mut self) {
        self.packed = OnceLock::new();
        if self.store.len() >= PACK_MIN_ROWS {
            let _ = self
                .packed
                .set(PackedView::build(&self.store).map(Box::new));
        }
    }

    /// Applies a batch of signed multiplicity edits atomically; see
    /// [`Bag::apply_delta_with`]. Equivalent to it under a sequential
    /// configuration.
    pub fn apply_delta(&mut self, delta: &crate::DeltaSet) -> Result<crate::DeltaApply> {
        self.apply_delta_with(delta, &ExecConfig::sequential())
    }

    /// Applies a [`crate::DeltaSet`] of signed multiplicity edits — the
    /// update primitive of the incremental consistency layer.
    ///
    /// The whole batch is validated first (every intermediate count must
    /// stay inside `u64`; otherwise [`CoreError::MultiplicityUnderflow`] /
    /// [`CoreError::MultiplicityOverflow`] and the bag is left untouched),
    /// then applied:
    ///
    /// * edits that change an existing row's multiplicity to another
    ///   non-zero value patch the multiplicity column **in place** — a
    ///   sealed bag stays sealed with no re-layout at all;
    /// * edits that add fresh rows or drop rows to zero dirty the sorted
    ///   run; the seal is then repaired **incrementally**: only the new
    ///   rows are sorted (`O(k log k)` for `k` fresh rows) and merged
    ///   with the existing run in one linear pass, sharded over `cfg`'s
    ///   executor — never the full `O(n log n)` re-sort of [`Bag::seal`].
    ///
    /// The bag always leaves sealed (an unsealed input is fully sealed as
    /// a side effect); the returned [`crate::DeltaApply`] reports what
    /// happened, letting callers that mirror the bag (flow networks,
    /// cached marginals) repair rather than rebuild when
    /// [`crate::DeltaApply::support_changed`] is false.
    pub fn apply_delta_with(
        &mut self,
        delta: &crate::DeltaSet,
        cfg: &ExecConfig,
    ) -> Result<crate::DeltaApply> {
        if *delta.schema() != self.schema {
            return Err(CoreError::SchemaMismatch {
                left: delta.schema().clone(),
                right: self.schema.clone(),
            });
        }
        // Validation pass: fold each row's edits to a final count,
        // rejecting any step outside u64 before the bag is touched.
        let mut finals: crate::FxHashMap<&[Value], u64> = Default::default();
        for e in delta.edits() {
            let cur = match finals.get(e.row()) {
                Some(&m) => m,
                None => self.multiplicity(e.row()),
            };
            let next = cur.checked_add_signed(e.delta()).ok_or(if e.delta() < 0 {
                CoreError::MultiplicityUnderflow
            } else {
                CoreError::MultiplicityOverflow
            })?;
            finals.insert(e.row(), next);
        }
        // Apply pass, in first-touch edit order so the storage layout of
        // fresh rows is deterministic. Every in-place multiplicity write
        // journals the old count so a failed reseal can roll the whole
        // batch back (fresh interned rows roll back by truncation).
        let was_sealed = self.sealed;
        let old_len = self.store.len();
        let old_live = self.live;
        let mut journal: Vec<(usize, u64)> = Vec::new();
        let mut out = crate::DeltaApply {
            touched: 0,
            added: 0,
            removed: 0,
            resealed: false,
            unary_change: 0,
        };
        for e in delta.edits() {
            let Some(fin) = finals.remove(e.row()) else {
                continue; // later edit of an already-applied row
            };
            let old = self.multiplicity(e.row());
            if fin == old {
                continue;
            }
            out.unary_change += fin as i128 - old as i128;
            if fin == 0 {
                let id = self
                    .store
                    .lookup(e.row())
                    .expect("old > 0 implies interned");
                journal.push((id.index(), old));
                self.mults[id.index()] = 0;
                self.live -= 1;
                self.sealed = false;
                out.removed += 1;
            } else if old == 0 {
                match self.store.lookup(e.row()) {
                    // Reviving a tombstone (only possible on an unsealed
                    // input — sealed bags have none).
                    Some(id) => {
                        journal.push((id.index(), 0));
                        self.mults[id.index()] = fin;
                        self.live += 1;
                    }
                    None => self.insert_row(e.row(), fin)?,
                }
                out.added += 1;
            } else {
                let id = self
                    .store
                    .lookup(e.row())
                    .expect("old > 0 implies interned");
                journal.push((id.index(), old));
                self.mults[id.index()] = fin;
                out.touched += 1;
            }
        }
        if !self.sealed {
            // Contain panics from the repair (failpoints, worker bugs on
            // the sequential path) so the rollback below always runs —
            // the batch is atomic: it either commits fully resealed or
            // the bag reverts to its exact pre-call state.
            let resealed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                if was_sealed {
                    self.try_reseal_delta(old_len, cfg)
                } else {
                    self.try_seal_with(cfg)
                }
            }))
            .unwrap_or_else(|payload| {
                Err(CoreError::WorkerPanicked {
                    task: 0,
                    message: crate::exec::panic_message(payload),
                })
            });
            if let Err(e) = resealed {
                // Roll back the apply pass: drop the batch's fresh rows,
                // restore every journaled count, and re-establish the
                // pre-call seal state and packed cache.
                self.store.truncate(old_len);
                self.mults.truncate(old_len);
                for &(id, m) in &journal {
                    debug_assert!(id < old_len, "journal only covers pre-existing rows");
                    self.mults[id] = m;
                }
                self.live = old_live;
                self.sealed = was_sealed;
                if was_sealed {
                    self.rebuild_packed();
                } else {
                    self.packed = OnceLock::new();
                }
                return Err(e);
            }
            out.resealed = true;
        }
        Ok(out)
    }

    /// Repairs the sorted-run invariant after [`Bag::apply_delta_with`]
    /// dirtied a previously sealed bag: the prefix `0..old_len` is still
    /// one sorted run (minus tombstones), the tail holds the delta's
    /// fresh rows. The tail sorts on its own (`k log k`), and the two
    /// runs merge — sharded into plain position ranges over the prefix
    /// (interned rows are distinct, so every position is its own key
    /// group) with the tail aligned by binary search. Per-shard runs
    /// splice in ascending order, so the layout is identical to the
    /// sequential merge at every thread count.
    ///
    /// Hot-loop details: compares go through a transient [`RowOrd`]
    /// (single integer compares when a packed encoding fits — the cached
    /// view died when the delta interned fresh rows), and the merge
    /// walks the **tail**, bulk-emitting each prefix stretch; with the
    /// prefix ≥ [`crate::exec::GALLOP_RATIO`]× the tail (the motivating
    /// tiny-delta-against-huge-run skew), stretch ends are found by
    /// galloping ([`crate::exec::gallop_bound`]) instead of a
    /// row-at-a-time scan. Both changes are order-exact: distinct
    /// interned rows make "prefix row < tail row" a strict total order,
    /// so emitting prefix-until-bound then the tail row reproduces the
    /// linear tail-pushing loop's sequence byte for byte.
    fn try_reseal_delta(&mut self, old_len: usize, cfg: &ExecConfig) -> Result<()> {
        debug_assert!(!self.sealed);
        let arity = self.schema.arity();
        let mut tail: Vec<u32> = (old_len as u32..self.store.len() as u32)
            .filter(|&i| self.mults[i as usize] > 0)
            .collect();
        let ord = RowOrd::new(&self.store, old_len + tail.len());
        tail.sort_unstable_by(|&a, &b| ord.cmp(a, b));
        let tasks = if old_len == 0 {
            vec![(0..0, 0..tail.len())]
        } else {
            let mut tasks = crate::exec::aligned_shard_tasks(
                old_len,
                tail.len(),
                cfg.shards_for(old_len),
                |_| false,
                |p| crate::exec::lower_bound_by(tail.len(), |t| ord.less(tail[t], p as u32)),
            );
            // The aligned planner assigns right rows below the first left
            // key to no task (joins drop them; this merge must not).
            tasks
                .first_mut()
                .expect("old_len > 0 yields a task")
                .1
                .start = 0;
            tasks
        };
        let tail = &tail;
        let ord = &ord;
        let runs = crate::exec::try_run_tasks(cfg, tasks, |(pr, tr)| {
            crate::fault::fire("bag::reseal_delta::merge");
            let mut run = ShardRun::with_capacity(arity, pr.len() + tr.len());
            let use_gallop = pr.len() >= crate::exec::GALLOP_RATIO * tr.len().max(1);
            let mut p = pr.start;
            for &tid in &tail[tr.clone()] {
                // End of the prefix stretch that sorts before this tail
                // row: galloped under skew, scanned otherwise.
                let bound = if use_gallop {
                    crate::exec::gallop_bound(p, pr.end, |q| ord.less(q as u32, tid))
                } else {
                    let mut q = p;
                    while q < pr.end && ord.less(q as u32, tid) {
                        q += 1;
                    }
                    q
                };
                for q in p..bound {
                    let m = self.mults[q];
                    if m > 0 {
                        run.push(self.store.row(RowId(q as u32)), m);
                    }
                }
                p = bound;
                run.push(self.store.row(RowId(tid)), self.mults[tid as usize]);
            }
            for q in p..pr.end {
                let m = self.mults[q];
                if m > 0 {
                    run.push(self.store.row(RowId(q as u32)), m);
                }
            }
            run
        })?;
        *self = Bag::from_shard_runs(
            self.schema.clone(),
            ShardedRowStore::from_runs(arity, runs),
            true,
        );
        Ok(())
    }

    /// The support `Supp(R)` as a relation over the same schema.
    pub fn support(&self) -> Relation {
        let mut rel = Relation::with_capacity(self.schema.clone(), self.live);
        for (row, _) in self.iter() {
            // Support rows of an interned bag are distinct.
            rel.push_unique_row(row);
        }
        if self.sealed {
            rel.mark_sealed();
        }
        rel
    }

    /// The marginal `R[Z]` of Equation (2) of the paper.
    ///
    /// Requires `Z ⊆ X`; multiplicities of collapsing tuples are summed
    /// with overflow checking. This is one columnar scan: rows are
    /// projected into a reused scratch buffer and accumulated in the
    /// output arena — no per-row boxing. When `Z` is a *prefix* of a
    /// sealed bag's schema the scan degenerates to a group-by sweep over
    /// adjacent rows with no hashing, and the result is itself sealed.
    pub fn marginal(&self, sub: &Schema) -> Result<Bag> {
        self.marginal_with(sub, &ExecConfig::sequential())
    }

    /// [`Bag::marginal`] under an explicit execution configuration.
    ///
    /// When `Z` is a prefix of a sealed bag's schema and `cfg` permits,
    /// the group-by sweep is sharded at key-group boundaries
    /// ([`crate::exec`]) and swept in parallel; per-shard runs splice
    /// back in shard order, so the result is byte-identical to the
    /// sequential sweep and still sealed. All other cases (unsealed or
    /// non-prefix `Z`) take the sequential scan: their rows are
    /// unordered, so shards would collide on output groups.
    pub fn marginal_with(&self, sub: &Schema, cfg: &ExecConfig) -> Result<Bag> {
        let idx = self.schema.projection_indices(sub)?;
        if self.sealed && crate::tuple::is_prefix_projection(&idx) {
            let k = idx.len();
            let shards = cfg.shards_for(self.store.len());
            if shards > 1 {
                return self.marginal_prefix_parallel(sub, k, shards, cfg);
            }
            return self.marginal_sorted_prefix(sub, k);
        }
        let mut out = Bag::with_capacity(sub.clone(), self.live.min(1 << 20));
        let mut scratch: Vec<Value> = Vec::with_capacity(idx.len());
        for (row, m) in self.iter() {
            scratch.clear();
            scratch.extend(idx.iter().map(|&i| row[i]));
            out.insert_row(&scratch, m)?;
        }
        Ok(out)
    }

    /// Shard-parallel prefix marginal: the sealed run splits at prefix
    /// group boundaries, each shard runs the group-by sweep of
    /// [`Bag::marginal_sorted_prefix`] into a [`ShardRun`], and the runs
    /// splice into one sealed bag.
    fn marginal_prefix_parallel(
        &self,
        sub: &Schema,
        k: usize,
        shards: usize,
        cfg: &ExecConfig,
    ) -> Result<Bag> {
        let arity = self.schema.arity();
        let data = self.store.values();
        let ranges = shard_ranges(self.store.len(), shards, |p| {
            data[(p - 1) * arity..(p - 1) * arity + k] == data[p * arity..p * arity + k]
        });
        let runs =
            crate::exec::try_run_shards(cfg, ranges, |range| self.marginal_prefix_run(k, range))?;
        let runs: Result<Vec<ShardRun>> = runs.into_iter().collect();
        Ok(Bag::from_shard_runs(
            sub.clone(),
            ShardedRowStore::from_runs(k, runs?),
            true,
        ))
    }

    /// One shard's group-by sweep over `range` of the sealed run,
    /// emitting `(prefix, summed multiplicity)` into a [`ShardRun`].
    fn marginal_prefix_run(&self, k: usize, range: std::ops::Range<usize>) -> Result<ShardRun> {
        let arity = self.schema.arity();
        let data = self.store.values();
        // One group per input row is the upper bound (capped like the
        // sequential path's pre-sizing).
        let mut run = ShardRun::with_capacity(k, range.len().min(1 << 20));
        let mut current: Option<(usize, u64)> = None; // (row offset, acc)
        for id in range {
            let off = id * arity;
            let m = self.mults[id];
            debug_assert!(m > 0, "sealed bags have no tombstones");
            match current {
                Some((prev, acc)) if data[prev..prev + k] == data[off..off + k] => {
                    let acc = acc.checked_add(m).ok_or(CoreError::MultiplicityOverflow)?;
                    current = Some((prev, acc));
                }
                Some((prev, acc)) => {
                    run.push(&data[prev..prev + k], acc);
                    current = Some((off, m));
                }
                None => current = Some((off, m)),
            }
        }
        if let Some((prev, acc)) = current {
            run.push(&data[prev..prev + k], acc);
        }
        Ok(run)
    }

    /// Group-by sweep for `Z` = first `k` columns of a sealed bag: equal
    /// prefixes are adjacent, so marginalizing is a linear merge of
    /// neighbouring groups and the output inherits the sorted order.
    fn marginal_sorted_prefix(&self, sub: &Schema, k: usize) -> Result<Bag> {
        let mut out = Bag::with_capacity(sub.clone(), self.live.min(1 << 20));
        let arity = self.schema.arity();
        let data = self.store.values();
        let mut current: Option<(usize, u64)> = None; // (row offset, acc)
        for id in 0..self.store.len() {
            let off = id * arity;
            let m = self.mults[id];
            debug_assert!(m > 0, "sealed bags have no tombstones");
            match current {
                Some((prev, acc)) if data[prev..prev + k] == data[off..off + k] => {
                    let acc = acc.checked_add(m).ok_or(CoreError::MultiplicityOverflow)?;
                    current = Some((prev, acc));
                }
                Some((prev, acc)) => {
                    out.push_sorted_row(&data[prev..prev + k], acc);
                    current = Some((off, m));
                }
                None => current = Some((off, m)),
            }
        }
        if let Some((prev, acc)) = current {
            out.push_sorted_row(&data[prev..prev + k], acc);
        }
        Ok(out)
    }

    /// Appends a row known to be strictly greater than every stored row
    /// (bulk builds emitting in lexicographic order). Keeps the bag
    /// sealed.
    pub(crate) fn push_sorted_row(&mut self, row: &[Value], mult: u64) {
        debug_assert!(self.sealed);
        debug_assert!(mult > 0);
        debug_assert_eq!(row.len(), self.schema.arity());
        self.packed = OnceLock::new();
        self.store.push_unique_unchecked(row);
        self.mults.push(mult);
        self.live += 1;
    }

    /// Assembles a bag from per-shard output runs ([`crate::exec`]): row
    /// data memcpys into one arena with worker-precomputed hashes, run
    /// payloads become the multiplicity column. Producers guarantee rows
    /// are globally distinct across runs (shards cover disjoint key
    /// ranges); `sealed` additionally asserts the concatenation is in
    /// strictly increasing lexicographic order (prefix-marginal outputs).
    pub(crate) fn from_shard_runs(schema: Schema, sharded: ShardedRowStore, sealed: bool) -> Bag {
        debug_assert_eq!(
            sharded.runs().first().map_or(schema.arity(), |r| r.arity()),
            schema.arity()
        );
        let mut mults = Vec::with_capacity(sharded.total_rows());
        for run in sharded.runs() {
            for i in 0..run.len() {
                debug_assert!(run.payload(i) > 0);
                mults.push(run.payload(i));
            }
        }
        let store = sharded.into_store();
        debug_assert!(
            !sealed || store.iter().zip(store.iter().skip(1)).all(|(a, b)| a < b),
            "sealed splice requires globally ascending rows"
        );
        let live = store.len();
        Bag {
            schema,
            store,
            mults,
            live,
            // An empty splice is trivially a sorted run — matching the
            // sequential paths, whose empty outputs are born sealed.
            sealed: sealed || live == 0,
            packed: OnceLock::new(),
        }
    }

    /// Reassembles a sealed bag from its persisted parts — the snapshot
    /// loading seam. `store` must already satisfy the sealed sorted-run
    /// invariant (certified by [`RowStore::from_sorted_rows`], not
    /// recomputed here), `mults` is the dense multiplicity column with no
    /// tombstones. No re-interning, no re-sorting; the packed view stays
    /// lazy exactly as after a seal. Returns `None` on any shape
    /// violation: arity mismatch, column-length mismatch, or a zero
    /// multiplicity (tombstones never survive a seal).
    pub fn from_sealed_parts(schema: Schema, store: RowStore, mults: Vec<u64>) -> Option<Bag> {
        if store.arity() != schema.arity() || mults.len() != store.len() {
            return None;
        }
        if mults.contains(&0) {
            return None;
        }
        debug_assert!(
            store.iter().zip(store.iter().skip(1)).all(|(a, b)| a < b),
            "from_sealed_parts requires a strictly ascending arena"
        );
        let live = store.len();
        Some(Bag {
            schema,
            store,
            mults,
            live,
            sealed: true,
            packed: OnceLock::new(),
        })
    }

    /// Appends a distinct row without the sorted guarantee (join outputs,
    /// which are unique by construction but emitted in key-group order).
    pub(crate) fn push_unique_row(&mut self, row: &[Value], mult: u64) {
        debug_assert!(mult > 0);
        self.packed = OnceLock::new();
        self.store.push_unique_unchecked(row);
        self.mults.push(mult);
        self.live += 1;
        self.sealed = false;
    }

    /// The backing columnar arena. Join and flow-network hot paths index
    /// rows by id through this instead of materializing reference
    /// vectors; pair it with [`Bag::live_ids`] and [`Bag::mult_of`] for
    /// single-pass columnar scans.
    #[inline]
    pub fn store(&self) -> &RowStore {
        &self.store
    }

    /// Multiplicity by dense row id (0 for tombstoned rows).
    #[inline]
    pub fn mult_of(&self, id: u32) -> u64 {
        self.mults[id as usize]
    }

    /// Ids of live (non-tombstone) rows in storage order. On a sealed
    /// bag this is `0..store().len()` in lexicographic row order.
    pub fn live_ids(&self) -> impl Iterator<Item = u32> + '_ {
        (0..self.store.len() as u32).filter(|&i| self.mults[i as usize] > 0)
    }

    /// Bag containment `R ⊆ᵇ S`: `R(t) ≤ S(t)` for every tuple.
    ///
    /// Returns `false` (rather than an error) when the schemas differ,
    /// since bags over different schemas are simply incomparable.
    pub fn contained_in(&self, other: &Bag) -> bool {
        self.schema == other.schema && self.iter().all(|(r, m)| m <= other.multiplicity(r))
    }

    /// True iff every multiplicity is ≤ 1 (the bag "is" a relation).
    pub fn is_relation(&self) -> bool {
        self.mults.iter().all(|&m| m <= 1)
    }

    /// Pointwise sum of two bags over the same schema (checked).
    pub fn sum(&self, other: &Bag) -> Result<Bag> {
        if self.schema != other.schema {
            return Err(CoreError::SchemaMismatch {
                left: self.schema.clone(),
                right: other.schema.clone(),
            });
        }
        let mut out = self.clone();
        for (row, m) in other.iter() {
            out.insert_row(row, m)?;
        }
        Ok(out)
    }

    /// Multiplies every multiplicity by `k` (checked). `k = 0` empties
    /// the bag.
    pub fn scale(&self, k: u64) -> Result<Bag> {
        let mut out = Bag::with_capacity(self.schema.clone(), self.live);
        if k == 0 {
            return Ok(out);
        }
        for (row, m) in self.iter() {
            let mk = m.checked_mul(k).ok_or(CoreError::MultiplicityOverflow)?;
            // Scaling preserves distinctness and row order.
            out.push_unique_row(row, mk);
        }
        out.sealed = self.sealed;
        Ok(out)
    }

    /// Renames attributes via `f`, keeping rows. The map must be
    /// injective on the schema (checked via resulting arity).
    ///
    /// Used by the paper's reduction in Lemma 6, which replaces
    /// `R_{n-1}(A_{n-1} A_1)` by "an identical copy of schema
    /// `A_{n-1} A_n`".
    pub fn rename(&self, f: impl Fn(crate::Attr) -> crate::Attr) -> Result<Bag> {
        let new_attrs: Vec<crate::Attr> = self.schema.iter().map(&f).collect();
        let new_schema = Schema::from_attrs(new_attrs.iter().copied());
        if new_schema.arity() != self.schema.arity() {
            return Err(CoreError::DuplicateAttr(
                // Find one collision for the error message.
                new_attrs
                    .iter()
                    .copied()
                    .find(|a| new_attrs.iter().filter(|&&b| b == *a).count() > 1)
                    .unwrap_or(crate::Attr::new(0)),
            ));
        }
        // position i of the old schema maps to position of f(old[i]) in new.
        let mut out = Bag::with_capacity(new_schema.clone(), self.live);
        let old_attrs = self.schema.attrs();
        let mut perm = vec![0usize; old_attrs.len()];
        for (i, &a) in old_attrs.iter().enumerate() {
            perm[i] = new_schema
                .position(f(a))
                .expect("renamed attr in new schema");
        }
        let mut scratch = vec![Value::new(0); self.schema.arity()];
        for (row, m) in self.iter() {
            for (i, &v) in row.iter().enumerate() {
                scratch[perm[i]] = v;
            }
            // A permutation of distinct rows stays distinct.
            out.push_unique_row(&scratch, m);
        }
        Ok(out)
    }
}

/// Iterator over a bag's `(row, multiplicity)` pairs in lexicographic
/// order ([`Bag::iter_sorted`]). Allocation-free on sealed bags.
pub struct SortedRows<'a>(SortedRowsInner<'a>);

enum SortedRowsInner<'a> {
    /// Sealed: storage order *is* sorted order; walk the run in place.
    Sealed {
        store: &'a RowStore,
        mults: &'a [u64],
        next: usize,
    },
    /// Unsealed: a reference vector sorted up front.
    Sorted(std::vec::IntoIter<(&'a [Value], u64)>),
}

impl<'a> Iterator for SortedRows<'a> {
    type Item = (&'a [Value], u64);

    #[inline]
    fn next(&mut self) -> Option<Self::Item> {
        match &mut self.0 {
            SortedRowsInner::Sealed { store, mults, next } => {
                if *next >= store.len() {
                    return None;
                }
                let id = *next;
                *next += 1;
                Some((store.row(RowId(id as u32)), mults[id]))
            }
            SortedRowsInner::Sorted(it) => it.next(),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match &self.0 {
            SortedRowsInner::Sealed { store, next, .. } => {
                let rem = store.len() - next;
                (rem, Some(rem))
            }
            SortedRowsInner::Sorted(it) => it.size_hint(),
        }
    }
}

impl ExactSizeIterator for SortedRows<'_> {}

/// `⌈log₂(m+1)⌉`: bits needed to write `m` in binary (0 for m = 0).
#[inline]
pub fn bits(m: u64) -> u32 {
    64 - m.leading_zeros()
}

impl PartialEq for Bag {
    fn eq(&self, other: &Self) -> bool {
        self.schema == other.schema
            && self.live == other.live
            && self.iter().all(|(r, m)| other.multiplicity(r) == m)
    }
}

impl Eq for Bag {}

impl fmt::Debug for Bag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Bag {
    /// Tabular form mirroring the paper's `A B # / a b : m` notation.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} #", self.schema)?;
        for (row, m) in self.iter_sorted() {
            let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
            writeln!(f, "  {} : {}", cells.join(" "), m)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Attr, Deadline};

    fn schema(ids: &[u32]) -> Schema {
        Schema::from_attrs(ids.iter().map(|&i| Attr::new(i)))
    }

    /// The bag R(A,B) = {(a1,b1):2, (a2,b2):1, (a3,b3):5} from Section 2.
    fn section2_bag() -> Bag {
        Bag::from_u64s(
            schema(&[0, 1]),
            [(&[1u64, 1][..], 2), (&[2, 2][..], 1), (&[3, 3][..], 5)],
        )
        .unwrap()
    }

    #[test]
    fn insert_accumulates_and_skips_zero() {
        let mut b = Bag::new(schema(&[0]));
        b.insert(vec![Value(1)], 2).unwrap();
        b.insert(vec![Value(1)], 3).unwrap();
        b.insert(vec![Value(2)], 0).unwrap();
        assert_eq!(b.multiplicity(&[Value(1)]), 5);
        assert_eq!(b.multiplicity(&[Value(2)]), 0);
        assert_eq!(b.support_size(), 1);
    }

    #[test]
    fn insert_checks_arity() {
        let mut b = Bag::new(schema(&[0, 1]));
        assert!(b.insert(vec![Value(1)], 1).is_err());
    }

    #[test]
    fn overflow_is_detected() {
        let mut b = Bag::new(schema(&[0]));
        b.insert(vec![Value(1)], u64::MAX).unwrap();
        assert_eq!(
            b.insert(vec![Value(1)], 1),
            Err(CoreError::MultiplicityOverflow)
        );
        // marginal overflow: two rows collapsing to one
        let mut c = Bag::new(schema(&[0, 1]));
        c.insert(vec![Value(1), Value(1)], u64::MAX).unwrap();
        c.insert(vec![Value(1), Value(2)], 1).unwrap();
        assert_eq!(
            c.marginal(&schema(&[0])).unwrap_err(),
            CoreError::MultiplicityOverflow
        );
    }

    #[test]
    fn prefix_marginal_overflow_is_detected() {
        // Same collapse, but through the sealed group-by sweep.
        let mut c = Bag::new(schema(&[0, 1]));
        c.insert(vec![Value(1), Value(1)], u64::MAX).unwrap();
        c.insert(vec![Value(1), Value(2)], 1).unwrap();
        c.seal();
        assert!(c.is_sealed());
        assert_eq!(
            c.marginal(&schema(&[0])).unwrap_err(),
            CoreError::MultiplicityOverflow
        );
    }

    #[test]
    fn set_zero_removes() {
        let mut b = section2_bag();
        b.set(vec![Value(1), Value(1)], 0).unwrap();
        assert_eq!(b.support_size(), 2);
        b.set(vec![Value(2), Value(2)], 7).unwrap();
        assert_eq!(b.multiplicity(&[Value(2), Value(2)]), 7);
    }

    #[test]
    fn set_zero_then_reinsert_revives_row() {
        let mut b = section2_bag();
        b.set(vec![Value(1), Value(1)], 0).unwrap();
        assert_eq!(b.multiplicity(&[Value(1), Value(1)]), 0);
        b.insert(vec![Value(1), Value(1)], 4).unwrap();
        assert_eq!(b.multiplicity(&[Value(1), Value(1)]), 4);
        assert_eq!(b.support_size(), 3);
        // unary size ignores tombstones
        assert_eq!(b.unary_size(), 4 + 1 + 5);
    }

    #[test]
    fn norms_match_definitions() {
        let b = section2_bag();
        assert_eq!(b.support_size(), 3); // ‖R‖supp
        assert_eq!(b.multiplicity_bound(), 5); // ‖R‖mu
        assert_eq!(b.multiplicity_size(), 3); // ⌈log2(5+1)⌉ = 3
        assert_eq!(b.unary_size(), 8); // 2+1+5
        assert_eq!(b.binary_size(), 2 + 1 + 3); // bits(2)+bits(1)+bits(5)
    }

    #[test]
    fn bits_function() {
        assert_eq!(bits(0), 0);
        assert_eq!(bits(1), 1);
        assert_eq!(bits(2), 2);
        assert_eq!(bits(3), 2);
        assert_eq!(bits(4), 3);
        assert_eq!(bits(u64::MAX), 64);
    }

    #[test]
    fn marginal_on_full_schema_is_identity() {
        let b = section2_bag();
        assert_eq!(b.marginal(b.schema()).unwrap(), b);
    }

    #[test]
    fn marginal_sums_multiplicities() {
        // R(A,B) with two tuples sharing the same A-value.
        let b = Bag::from_u64s(
            schema(&[0, 1]),
            [(&[1u64, 1][..], 2), (&[1, 2][..], 3), (&[2, 1][..], 5)],
        )
        .unwrap();
        let m = b.marginal(&schema(&[0])).unwrap();
        assert_eq!(m.multiplicity(&[Value(1)]), 5);
        assert_eq!(m.multiplicity(&[Value(2)]), 5);
    }

    #[test]
    fn prefix_and_generic_marginals_agree() {
        // Sealed prefix sweep vs unsealed hash accumulation.
        let rows: [(&[u64], u64); 5] = [
            (&[1, 1, 1], 1),
            (&[1, 1, 2], 2),
            (&[1, 2, 1], 4),
            (&[2, 2, 2], 8),
            (&[2, 2, 3], 16),
        ];
        let sealed = Bag::from_u64s(schema(&[0, 1, 2]), rows).unwrap();
        assert!(sealed.is_sealed());
        let mut unsealed = Bag::new(schema(&[0, 1, 2]));
        for (row, m) in rows.iter().rev() {
            let vals: Vec<Value> = row.iter().copied().map(Value::new).collect();
            unsealed.insert(vals, *m).unwrap();
        }
        assert!(!unsealed.is_sealed());
        for sub in [
            schema(&[0]),
            schema(&[0, 1]),
            schema(&[0, 1, 2]),
            schema(&[1, 2]),
        ] {
            let a = sealed.marginal(&sub).unwrap();
            let b = unsealed.marginal(&sub).unwrap();
            assert_eq!(a, b, "marginal onto {sub}");
        }
    }

    #[test]
    fn marginal_on_empty_schema_is_total_count() {
        let b = section2_bag();
        let m = b.marginal(&Schema::empty()).unwrap();
        assert_eq!(m.multiplicity(&[]), 8);
        assert_eq!(m, Bag::of_empty_tuple(8));
    }

    #[test]
    fn marginal_requires_subschema() {
        let b = section2_bag();
        assert!(b.marginal(&schema(&[7])).is_err());
    }

    #[test]
    fn nested_marginals_commute() {
        // R[Z][W] = R[W] for W ⊆ Z ⊆ X
        let x = schema(&[0, 1, 2]);
        let b = Bag::from_u64s(
            x,
            [
                (&[1u64, 1, 1][..], 1),
                (&[1, 1, 2][..], 2),
                (&[1, 2, 1][..], 4),
                (&[2, 2, 2][..], 8),
            ],
        )
        .unwrap();
        let z = schema(&[0, 1]);
        let w = schema(&[0]);
        assert_eq!(
            b.marginal(&z).unwrap().marginal(&w).unwrap(),
            b.marginal(&w).unwrap()
        );
    }

    #[test]
    fn support_of_marginal_is_projection_of_support() {
        let b = section2_bag();
        let z = schema(&[0]);
        let lhs = b.marginal(&z).unwrap().support();
        let rhs = b.support().project(&z).unwrap();
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn containment() {
        let b = section2_bag();
        let mut c = b.clone();
        c.insert(vec![Value(9), Value(9)], 1).unwrap();
        assert!(b.contained_in(&c));
        assert!(!c.contained_in(&b));
        assert!(b.contained_in(&b));
        // different schemas are incomparable
        let d = Bag::new(schema(&[5]));
        assert!(!b.contained_in(&d));
        // the empty bag over the same schema is contained in anything
        assert!(Bag::new(schema(&[0, 1])).contained_in(&b));
    }

    #[test]
    fn sum_and_scale() {
        let b = section2_bag();
        let two_b = b.sum(&b).unwrap();
        assert_eq!(two_b, b.scale(2).unwrap());
        assert_eq!(b.scale(0).unwrap().support_size(), 0);
        assert!(b.scale(u64::MAX).is_err());
    }

    #[test]
    fn is_relation_detects_multiplicities() {
        assert!(!section2_bag().is_relation());
        let r = Bag::from_u64s(schema(&[0]), [(&[1u64][..], 1), (&[2][..], 1)]).unwrap();
        assert!(r.is_relation());
        assert!(Bag::new(schema(&[0])).is_relation());
    }

    #[test]
    fn rename_permutes_columns() {
        // swap A0 <-> A1: row (a,b) becomes (b,a) in the new sorted order.
        let b = Bag::from_u64s(schema(&[0, 1]), [(&[1u64, 2][..], 3)]).unwrap();
        let r = b
            .rename(|a| if a == Attr(0) { Attr(1) } else { Attr(0) })
            .unwrap();
        assert_eq!(r.multiplicity(&[Value(2), Value(1)]), 3);
        // non-injective rename is rejected
        assert!(b.rename(|_| Attr(7)).is_err());
    }

    #[test]
    fn rename_to_fresh_attr() {
        // the Lemma 6 move: R(A_{n-1}, A_1) -> R(A_{n-1}, A_n)
        let b = Bag::from_u64s(schema(&[0, 3]), [(&[1u64, 5][..], 2)]).unwrap();
        let r = b
            .rename(|a| if a == Attr(0) { Attr(4) } else { a })
            .unwrap();
        assert_eq!(r.schema(), &schema(&[3, 4]));
        // old row was (A0=1, A3=5); new row is (A3=5, A4=1)
        assert_eq!(r.multiplicity(&[Value(5), Value(1)]), 2);
    }

    #[test]
    fn display_sorted() {
        let b = section2_bag();
        let s = b.to_string();
        let i1 = s.find("1 1 : 2").unwrap();
        let i2 = s.find("2 2 : 1").unwrap();
        let i3 = s.find("3 3 : 5").unwrap();
        assert!(i1 < i2 && i2 < i3);
    }

    #[test]
    fn of_empty_tuple_zero_is_empty() {
        assert!(Bag::of_empty_tuple(0).is_empty());
        assert_eq!(Bag::of_empty_tuple(3).unary_size(), 3);
    }

    #[test]
    fn seal_compacts_tombstones_and_sorts() {
        let mut b = Bag::new(schema(&[0]));
        for v in [5u64, 1, 9, 3] {
            b.insert(vec![Value(v)], v).unwrap();
        }
        b.set(vec![Value(9)], 0).unwrap();
        assert!(!b.is_sealed());
        b.seal();
        assert!(b.is_sealed());
        assert_eq!(b.support_size(), 3);
        let rows: Vec<u64> = b.iter().map(|(r, _)| r[0].get()).collect();
        assert_eq!(rows, vec![1, 3, 5], "iteration follows the sorted run");
        assert_eq!(b.multiplicity(&[Value(9)]), 0);
        assert_eq!(b.multiplicity(&[Value(3)]), 3);
    }

    #[test]
    fn seal_with_is_bit_identical_to_sequential_seal() {
        // duplicate-heavy rows, reverse insertion order, and a tombstone:
        // everything the seal has to repair.
        let mut bag = Bag::new(schema(&[0, 1]));
        for i in (0..500u64).rev() {
            bag.insert(vec![Value(i % 23), Value(i % 7)], i % 5 + 1)
                .unwrap();
        }
        bag.set(vec![Value(3), Value(3)], 0).unwrap();
        assert!(!bag.is_sealed());
        let mut seq = bag.clone();
        seq.seal();
        for threads in [1usize, 2, 4, 8] {
            let mut par = bag.clone();
            par.seal_with(&ExecConfig {
                threads,
                min_parallel_support: 1,
                deadline: Deadline::NONE,
            });
            assert!(par.is_sealed());
            // identical storage layout, not just equal multisets
            let seq_rows: Vec<(&[Value], u64)> = seq.iter().collect();
            let par_rows: Vec<(&[Value], u64)> = par.iter().collect();
            assert_eq!(par_rows, seq_rows, "threads = {threads}");
        }
    }

    #[test]
    fn ascending_inserts_stay_sealed() {
        let mut b = Bag::new(schema(&[0]));
        for v in 0..10u64 {
            b.insert(vec![Value(v)], 1).unwrap();
        }
        assert!(b.is_sealed(), "in-order appends extend the sorted run");
        b.insert(vec![Value(4)], 1).unwrap();
        assert!(b.is_sealed(), "revisiting an existing row keeps order");
        b.insert(vec![Value(3)], 0).unwrap();
        assert!(b.is_sealed(), "zero-multiplicity insert is a no-op");
    }

    #[test]
    fn packed_cache_tracks_arena_changes() {
        // Large enough that the seal materializes the cache eagerly.
        let mut b = Bag::new(schema(&[0, 1]));
        for v in (0..64u64).rev() {
            b.insert(vec![Value(v), Value(v % 7)], 1).unwrap();
        }
        assert!(!b.is_sealed() && !b.packed_ready());
        assert!(b.packed_view().is_none(), "unsealed bags expose no view");
        b.seal();
        assert!(b.packed_ready(), "seal materializes the view");
        let view = b.packed_view().expect("small values fit the raw tier");
        assert_eq!(view.len(), 64);
        // Packed compares must equal slice compares across the store.
        for a in 0..64u32 {
            for c in 0..64u32 {
                assert_eq!(
                    view.cmp(a, c),
                    b.store().row(RowId(a)).cmp(b.store().row(RowId(c)))
                );
            }
        }
        // An ascending append keeps the bag sealed but grows the arena:
        // the cache must drop (and lazily rebuild to cover the new row).
        b.insert(vec![Value(100), Value(0)], 1).unwrap();
        assert!(b.is_sealed());
        assert!(!b.packed_ready(), "arena growth invalidates the cache");
        assert_eq!(b.packed_view().map(|v| v.len()), Some(65));
        // Mult-only changes leave the arena (and so the view) intact.
        b.insert(vec![Value(100), Value(0)], 5).unwrap();
        assert!(b.packed_ready());
        // A clone carries the cache state independently.
        let c = b.clone();
        assert!(c.packed_ready());
    }

    #[test]
    fn apply_delta_in_place_keeps_seal() {
        let mut b = section2_bag();
        assert!(b.is_sealed());
        let mut d = crate::DeltaSet::new(b.schema().clone());
        d.bump_u64s(&[1, 1], 3).unwrap();
        d.bump_u64s(&[3, 3], -4).unwrap();
        let out = b.apply_delta(&d).unwrap();
        assert!(b.is_sealed());
        assert!(!out.support_changed());
        assert!(!out.resealed);
        assert_eq!(out.touched, 2);
        assert_eq!(out.unary_change, -1);
        assert_eq!(b.multiplicity(&[Value(1), Value(1)]), 5);
        assert_eq!(b.multiplicity(&[Value(3), Value(3)]), 1);
    }

    #[test]
    fn apply_delta_fresh_and_removed_rows_reseal_incrementally() {
        let mut b = section2_bag();
        let mut d = crate::DeltaSet::new(b.schema().clone());
        d.bump_u64s(&[0, 9], 7).unwrap(); // fresh, sorts before everything
        d.bump_u64s(&[2, 2], -1).unwrap(); // drops to zero
        d.bump_u64s(&[9, 0], 2).unwrap(); // fresh, sorts after everything
        let out = b.apply_delta(&d).unwrap();
        assert!(b.is_sealed());
        assert!(out.support_changed());
        assert!(out.resealed);
        assert_eq!((out.added, out.removed), (2, 1));
        // layout identical to a from-scratch sealed build
        let expected = Bag::from_u64s(
            schema(&[0, 1]),
            [
                (&[0u64, 9][..], 7),
                (&[1, 1][..], 2),
                (&[3, 3][..], 5),
                (&[9, 0][..], 2),
            ],
        )
        .unwrap();
        let got: Vec<(&[Value], u64)> = b.iter().collect();
        let want: Vec<(&[Value], u64)> = expected.iter().collect();
        assert_eq!(got, want, "reseal must reproduce the sealed layout");
    }

    #[test]
    fn apply_delta_same_batch_add_then_remove_is_clean() {
        let mut b = section2_bag();
        let mut d = crate::DeltaSet::new(b.schema().clone());
        d.bump_u64s(&[7, 7], 4).unwrap();
        d.bump_u64s(&[7, 7], -4).unwrap();
        let out = b.apply_delta(&d).unwrap();
        assert!(out.is_noop(), "net-zero edit folds away: {out:?}");
        assert!(b.is_sealed());
        assert_eq!(b.multiplicity(&[Value(7), Value(7)]), 0);
        assert_eq!(b.support_size(), 3);
    }

    #[test]
    fn apply_delta_is_atomic_on_error() {
        let mut b = section2_bag();
        let before = b.clone();
        let mut d = crate::DeltaSet::new(b.schema().clone());
        d.bump_u64s(&[1, 1], 5).unwrap();
        d.bump_u64s(&[2, 2], -2).unwrap(); // 1 - 2 < 0: underflow
        assert_eq!(
            b.apply_delta(&d).unwrap_err(),
            CoreError::MultiplicityUnderflow
        );
        assert_eq!(b, before, "failed delta must leave the bag untouched");
        let mut d = crate::DeltaSet::new(b.schema().clone());
        d.bump_u64s(&[3, 3], i64::MAX).unwrap();
        d.bump_u64s(&[3, 3], i64::MAX).unwrap();
        d.bump_u64s(&[3, 3], i64::MAX).unwrap();
        assert_eq!(
            b.apply_delta(&d).unwrap_err(),
            CoreError::MultiplicityOverflow
        );
        assert_eq!(b, before);
    }

    #[test]
    fn apply_delta_rejects_schema_mismatch() {
        let mut b = section2_bag();
        let d = crate::DeltaSet::new(schema(&[5, 6]));
        assert!(matches!(
            b.apply_delta(&d),
            Err(CoreError::SchemaMismatch { .. })
        ));
    }

    #[test]
    fn apply_delta_on_unsealed_bag_seals_it() {
        let mut b = Bag::new(schema(&[0]));
        for v in [9u64, 1, 5] {
            b.insert(vec![Value(v)], 1).unwrap();
        }
        assert!(!b.is_sealed());
        let mut d = crate::DeltaSet::new(b.schema().clone());
        d.bump_u64s(&[5], 1).unwrap();
        let out = b.apply_delta(&d).unwrap();
        assert!(b.is_sealed());
        assert!(out.resealed);
        let rows: Vec<u64> = b.iter().map(|(r, _)| r[0].get()).collect();
        assert_eq!(rows, vec![1, 5, 9]);
    }

    #[test]
    fn apply_delta_with_is_thread_count_invariant() {
        let mut base = Bag::new(schema(&[0, 1]));
        for i in 0..300u64 {
            base.insert(vec![Value(i % 37), Value(i % 11)], i % 6 + 1)
                .unwrap();
        }
        base.seal();
        let mut d = crate::DeltaSet::new(base.schema().clone());
        for i in 0..40u64 {
            d.bump([Value(100 + i), Value(i)], (i % 3 + 1) as i64)
                .unwrap();
        }
        d.bump_u64s(&[0, 0], -(base.multiplicity(&[Value(0), Value(0)]) as i64))
            .unwrap();
        let mut seq = base.clone();
        seq.apply_delta(&d).unwrap();
        for threads in [2usize, 4, 8] {
            let cfg = ExecConfig::builder()
                .threads(threads)
                .min_parallel_support(1)
                .build()
                .unwrap();
            let mut par = base.clone();
            par.apply_delta_with(&d, &cfg).unwrap();
            let seq_rows: Vec<(&[Value], u64)> = seq.iter().collect();
            let par_rows: Vec<(&[Value], u64)> = par.iter().collect();
            assert_eq!(par_rows, seq_rows, "threads = {threads}");
        }
    }

    /// A bag fingerprint for atomicity assertions: physical layout
    /// (row-major values in id order), multiplicity column, live count,
    /// seal flag, and whether a packed view is materialized.
    fn fingerprint(b: &Bag) -> (Vec<Value>, Vec<u64>, usize, bool, bool) {
        (
            b.store().values().to_vec(),
            (0..b.store().len() as u32).map(|i| b.mult_of(i)).collect(),
            b.support_size(),
            b.is_sealed(),
            b.packed_ready(),
        )
    }

    /// Builds a sealed bag plus a support-changing delta large enough to
    /// force the fresh-tail merge, for the atomicity tests below.
    fn atomicity_fixture() -> (Bag, crate::DeltaSet) {
        let mut base = Bag::new(schema(&[0, 1]));
        for i in 0..300u64 {
            base.insert(vec![Value(i % 41), Value(i % 13)], i % 5 + 1)
                .unwrap();
        }
        base.seal();
        let _ = base.packed_view(); // materialize the cache
        let mut d = crate::DeltaSet::new(base.schema().clone());
        for i in 0..30u64 {
            d.bump([Value(200 + i), Value(i)], (i % 4 + 1) as i64)
                .unwrap();
        }
        d.bump_u64s(&[1, 1], -(base.multiplicity(&[Value(1), Value(1)]) as i64))
            .unwrap();
        d.bump_u64s(&[2, 2], 7).unwrap();
        (base, d)
    }

    #[test]
    fn apply_delta_rolls_back_when_reseal_aborts() {
        let (base, d) = atomicity_fixture();
        for threads in [1usize, 4] {
            let mut b = base.clone();
            let before = fingerprint(&b);
            let cfg = ExecConfig::builder()
                .threads(threads)
                .min_parallel_support(1)
                .deadline(Deadline::at(std::time::Instant::now()))
                .build()
                .unwrap();
            let err = b.apply_delta_with(&d, &cfg).unwrap_err();
            assert!(
                matches!(err, CoreError::Aborted(_)),
                "threads={threads}: {err}"
            );
            assert_eq!(
                fingerprint(&b),
                before,
                "threads={threads}: layout, mults, live count, seal flag, \
                 and packed cache must be untouched after an aborted apply"
            );
            // The rolled-back bag is fully usable: the same delta applies
            // cleanly once the governance pressure is lifted.
            let mut expect = base.clone();
            expect.apply_delta(&d).unwrap();
            b.apply_delta(&d).unwrap();
            assert_eq!(b, expect, "threads={threads}");
        }
    }

    #[cfg(feature = "fault-injection")]
    #[test]
    fn apply_delta_rolls_back_when_merge_panics() {
        use crate::fault::{self, FaultAction};
        let _guard = fault::test_lock();
        // Worker-thread panics are not captured by the test harness;
        // silence the hook so intentional failpoint panics stay quiet.
        let prev_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let (base, d) = atomicity_fixture();
        for threads in [1usize, 4] {
            let mut b = base.clone();
            let before = fingerprint(&b);
            let cfg = ExecConfig::builder()
                .threads(threads)
                .min_parallel_support(1)
                .build()
                .unwrap();
            fault::arm("bag::reseal_delta::merge", FaultAction::Panic, 1);
            let err = b.apply_delta_with(&d, &cfg).unwrap_err();
            fault::reset();
            assert!(
                matches!(err, CoreError::WorkerPanicked { .. }),
                "threads={threads}: {err}"
            );
            assert_eq!(
                fingerprint(&b),
                before,
                "threads={threads}: mid-merge panic must leave the bag untouched"
            );
            let mut expect = base.clone();
            expect.apply_delta(&d).unwrap();
            b.apply_delta(&d).unwrap();
            assert_eq!(b, expect, "threads={threads}");
        }
        std::panic::set_hook(prev_hook);
    }

    #[test]
    fn equality_ignores_insertion_order_and_sealing() {
        let a = section2_bag();
        let mut b = Bag::new(schema(&[0, 1]));
        b.insert(vec![Value(3), Value(3)], 5).unwrap();
        b.insert(vec![Value(1), Value(1)], 2).unwrap();
        b.insert(vec![Value(2), Value(2)], 1).unwrap();
        assert_eq!(a, b);
        b.seal();
        assert_eq!(a, b);
    }
}
