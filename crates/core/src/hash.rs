//! A fast, deterministic hasher for small integer keys.
//!
//! Bags key their storage by rows of `u64` values; the default SipHash is
//! needlessly slow for this (see the Rust Performance Book's "Hashing"
//! chapter). We implement the well-known Fx multiply-rotate hash inline to
//! avoid an extra dependency. It is deterministic across runs, which the
//! test suite and the experiment harness rely on for reproducible output.
//!
//! Not DoS-resistant — appropriate for a computational library whose inputs
//! are the caller's own data, not untrusted network input.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// The Firefox/rustc "Fx" hash state.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(buf) | ((rest.len() as u64) << 56));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using the Fx hash.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using the Fx hash.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write_u64(0xdead_beef);
        b.write_u64(0xdead_beef);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn distinguishes_inputs() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write_u64(1);
        b.write_u64(2);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn byte_stream_matches_tail_handling() {
        // 9 bytes exercises both the chunked and the remainder path.
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        let mut b = FxHasher::default();
        b.write(&[1, 2, 3, 4, 5, 6, 7, 8, 10]);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn map_works() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        for i in 0..1000 {
            m.insert(i, i * i);
        }
        assert_eq!(m[&31], 961);
        assert_eq!(m.len(), 1000);
    }
}
