//! Schemas: finite, sorted sets of attributes.
//!
//! The paper writes `X`, `Y`, `Z` for sets of attributes and `XY` for the
//! union `X ∪ Y`. A [`Schema`] is such a set, stored strictly sorted so
//! that tuple rows have a canonical attribute order and set operations are
//! linear merges.

use crate::{Attr, CoreError, Result};
use std::fmt;

/// A finite set of attributes, strictly sorted by attribute id.
///
/// The empty schema is valid and important: `Tup(∅)` contains exactly the
/// empty tuple, and the marginal `R[∅]` of a bag is the bag holding the
/// empty tuple with multiplicity `‖R‖u` (the total count).
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Schema {
    attrs: Box<[Attr]>,
}

impl Schema {
    /// The empty schema `∅`.
    pub fn empty() -> Self {
        Schema {
            attrs: Box::new([]),
        }
    }

    /// Builds a schema from any iterator of attributes, sorting and
    /// deduplicating.
    pub fn from_attrs<I: IntoIterator<Item = Attr>>(attrs: I) -> Self {
        let mut v: Vec<Attr> = attrs.into_iter().collect();
        v.sort_unstable();
        v.dedup();
        Schema {
            attrs: v.into_boxed_slice(),
        }
    }

    /// Builds the schema `{A_lo, …, A_{hi-1}}` of consecutively numbered
    /// attributes. Convenient for the paper's families over `A_1 … A_n`.
    pub fn range(lo: u32, hi: u32) -> Self {
        Schema::from_attrs((lo..hi).map(Attr::new))
    }

    /// Number of attributes.
    #[inline]
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// True iff this is the empty schema.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty()
    }

    /// The attributes in sorted order.
    #[inline]
    pub fn attrs(&self) -> &[Attr] {
        &self.attrs
    }

    /// Iterator over the attributes in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = Attr> + '_ {
        self.attrs.iter().copied()
    }

    /// Membership test (binary search).
    #[inline]
    pub fn contains(&self, a: Attr) -> bool {
        self.attrs.binary_search(&a).is_ok()
    }

    /// Position of `a` within this schema's sorted order, if present.
    #[inline]
    pub fn position(&self, a: Attr) -> Option<usize> {
        self.attrs.binary_search(&a).ok()
    }

    /// True iff `self ⊆ other` (linear merge walk).
    pub fn is_subset_of(&self, other: &Schema) -> bool {
        let mut it = other.attrs.iter();
        'outer: for a in self.attrs.iter() {
            for b in it.by_ref() {
                match b.cmp(a) {
                    std::cmp::Ordering::Less => continue,
                    std::cmp::Ordering::Equal => continue 'outer,
                    std::cmp::Ordering::Greater => return false,
                }
            }
            return false;
        }
        true
    }

    /// Union `self ∪ other` (the paper's `XY`).
    pub fn union(&self, other: &Schema) -> Schema {
        let mut out = Vec::with_capacity(self.arity() + other.arity());
        let (mut i, mut j) = (0, 0);
        while i < self.attrs.len() && j < other.attrs.len() {
            match self.attrs[i].cmp(&other.attrs[j]) {
                std::cmp::Ordering::Less => {
                    out.push(self.attrs[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(other.attrs[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push(self.attrs[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&self.attrs[i..]);
        out.extend_from_slice(&other.attrs[j..]);
        Schema {
            attrs: out.into_boxed_slice(),
        }
    }

    /// Intersection `self ∩ other`.
    pub fn intersection(&self, other: &Schema) -> Schema {
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < self.attrs.len() && j < other.attrs.len() {
            match self.attrs[i].cmp(&other.attrs[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(self.attrs[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        Schema {
            attrs: out.into_boxed_slice(),
        }
    }

    /// Difference `self \ other`.
    pub fn difference(&self, other: &Schema) -> Schema {
        let mut out = Vec::new();
        let mut j = 0;
        for &a in self.attrs.iter() {
            while j < other.attrs.len() && other.attrs[j] < a {
                j += 1;
            }
            if j >= other.attrs.len() || other.attrs[j] != a {
                out.push(a);
            }
        }
        Schema {
            attrs: out.into_boxed_slice(),
        }
    }

    /// Removes a single attribute (used by vertex safe-deletions).
    pub fn without(&self, a: Attr) -> Schema {
        Schema::from_attrs(self.iter().filter(|&b| b != a))
    }

    /// For a subschema `sub ⊆ self`, returns for each attribute of `sub`
    /// its index within `self`'s sorted order.
    ///
    /// This is the projection map used to compute `t[Z]` from `t`: the
    /// `Z`-row consists of the `self`-row's entries at these positions.
    pub fn projection_indices(&self, sub: &Schema) -> Result<Vec<usize>> {
        let mut idx = Vec::with_capacity(sub.arity());
        for a in sub.iter() {
            match self.position(a) {
                Some(p) => idx.push(p),
                None => {
                    return Err(CoreError::NotASubschema {
                        sub: sub.clone(),
                        sup: self.clone(),
                    })
                }
            }
        }
        Ok(idx)
    }
}

impl fmt::Debug for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, a) in self.attrs.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<Attr> for Schema {
    fn from_iter<I: IntoIterator<Item = Attr>>(iter: I) -> Self {
        Schema::from_attrs(iter)
    }
}

impl<'a> IntoIterator for &'a Schema {
    type Item = Attr;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, Attr>>;
    fn into_iter(self) -> Self::IntoIter {
        self.attrs.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(ids: &[u32]) -> Schema {
        Schema::from_attrs(ids.iter().map(|&i| Attr::new(i)))
    }

    #[test]
    fn construction_sorts_and_dedups() {
        let x = Schema::from_attrs([Attr(3), Attr(1), Attr(3), Attr(2)]);
        assert_eq!(x.attrs(), &[Attr(1), Attr(2), Attr(3)]);
        assert_eq!(x.arity(), 3);
    }

    #[test]
    fn empty_schema() {
        let e = Schema::empty();
        assert!(e.is_empty());
        assert_eq!(e.arity(), 0);
        assert!(e.is_subset_of(&s(&[1, 2])));
        assert_eq!(e.union(&s(&[1])), s(&[1]));
        assert_eq!(s(&[1]).intersection(&e), e);
    }

    #[test]
    fn union_intersection_difference() {
        let x = s(&[1, 2, 3]);
        let y = s(&[2, 3, 4]);
        assert_eq!(x.union(&y), s(&[1, 2, 3, 4]));
        assert_eq!(x.intersection(&y), s(&[2, 3]));
        assert_eq!(x.difference(&y), s(&[1]));
        assert_eq!(y.difference(&x), s(&[4]));
    }

    #[test]
    fn subset_checks() {
        assert!(s(&[1, 3]).is_subset_of(&s(&[1, 2, 3])));
        assert!(!s(&[1, 4]).is_subset_of(&s(&[1, 2, 3])));
        assert!(s(&[]).is_subset_of(&s(&[])));
        assert!(!s(&[1]).is_subset_of(&s(&[])));
        let x = s(&[5, 9]);
        assert!(x.is_subset_of(&x));
    }

    #[test]
    fn positions_and_projection_indices() {
        let x = s(&[10, 20, 30]);
        assert_eq!(x.position(Attr(20)), Some(1));
        assert_eq!(x.position(Attr(25)), None);
        let idx = x.projection_indices(&s(&[30, 10])).unwrap();
        // sub-schema is sorted as {10, 30} -> positions 0 and 2.
        assert_eq!(idx, vec![0, 2]);
        assert!(x.projection_indices(&s(&[40])).is_err());
    }

    #[test]
    fn without_removes_one() {
        let x = s(&[1, 2, 3]);
        assert_eq!(x.without(Attr(2)), s(&[1, 3]));
        assert_eq!(x.without(Attr(9)), x);
    }

    #[test]
    fn range_builds_consecutive() {
        assert_eq!(Schema::range(1, 4), s(&[1, 2, 3]));
        assert_eq!(Schema::range(2, 2), Schema::empty());
    }

    #[test]
    fn display_format() {
        assert_eq!(s(&[1, 2]).to_string(), "{A1,A2}");
        assert_eq!(Schema::empty().to_string(), "{}");
    }
}
