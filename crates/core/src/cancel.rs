//! Cooperative cancellation and wall-clock deadlines.
//!
//! The resource-governance layer threads a [`Deadline`] through
//! [`crate::ExecConfig`] into every bulk path: the shard executor polls
//! it at chunk boundaries ([`crate::exec::try_run_tasks`]), Dinic polls
//! per BFS/DFS phase, the ILP search polls per node batch, and the
//! pairwise/stream drivers poll between bag pairs. A poll that fires
//! surfaces as [`crate::CoreError::Aborted`] carrying an [`AbortReason`],
//! which the session layer converts into a graceful
//! `Decision::Unknown` — never a hang, never a hard kill.
//!
//! Polling is cheap by construction: an unlimited deadline (the default
//! everywhere) is two `Option` tests, an armed one is one atomic load
//! and/or one monotonic clock read. Poll sites sit at *chunk* and
//! *phase* granularity, off the per-row hot loops.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a computation stopped without reaching an answer.
///
/// Carried by [`crate::CoreError::Aborted`] and surfaced by the session
/// layer next to `Decision::Unknown` in text, JSON, and the exit-code
/// contract.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AbortReason {
    /// The wall-clock deadline of the operation expired.
    DeadlineExceeded,
    /// A [`CancelToken`] was cancelled from outside.
    Cancelled,
    /// The exact-search node budget was exhausted before the search
    /// concluded (the cyclic branch's anytime answer).
    NodeBudget,
}

impl AbortReason {
    /// Stable machine-readable name (the JSON `abort_reason` value).
    pub const fn as_str(&self) -> &'static str {
        match self {
            AbortReason::DeadlineExceeded => "deadline_exceeded",
            AbortReason::Cancelled => "cancelled",
            AbortReason::NodeBudget => "node_budget",
        }
    }

    /// Human-readable phrase for text reports.
    pub const fn describe(&self) -> &'static str {
        match self {
            AbortReason::DeadlineExceeded => "deadline exceeded",
            AbortReason::Cancelled => "cancelled",
            AbortReason::NodeBudget => "node budget exhausted",
        }
    }
}

impl std::fmt::Display for AbortReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.describe())
    }
}

/// A shared cancellation flag: clone it, hand one copy to the work and
/// keep the other, then [`CancelToken::cancel`] from any thread.
///
/// Checked by every [`Deadline`] that carries it; cancellation is
/// cooperative (work stops at its next poll site) and sticky (there is
/// no un-cancel).
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation; every clone of this token observes it.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// True once [`CancelToken::cancel`] has been called on any clone.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }

    /// True iff `self` and `other` share one underlying flag.
    pub fn same_as(&self, other: &CancelToken) -> bool {
        Arc::ptr_eq(&self.flag, &other.flag)
    }
}

/// A poll-based abort condition: an optional wall-clock expiry plus an
/// optional [`CancelToken`].
///
/// The default ([`Deadline::NONE`]) never fires and costs two `Option`
/// tests per poll. Deadlines compose ([`Deadline::merged`]): the
/// earliest expiry and any cancelled token win.
#[derive(Clone, Debug, Default)]
pub struct Deadline {
    expires: Option<Instant>,
    token: Option<CancelToken>,
}

impl Deadline {
    /// The unlimited deadline: [`Deadline::poll`] never fires.
    pub const NONE: Deadline = Deadline {
        expires: None,
        token: None,
    };

    /// A deadline `budget` from now, with no cancellation token.
    pub fn after(budget: Duration) -> Self {
        Deadline {
            expires: Instant::now().checked_add(budget),
            token: None,
        }
    }

    /// A deadline at an absolute instant.
    pub fn at(expires: Instant) -> Self {
        Deadline {
            expires: Some(expires),
            token: None,
        }
    }

    /// A deadline that fires only on cancellation of `token`.
    pub fn cancelled_by(token: CancelToken) -> Self {
        Deadline {
            expires: None,
            token: Some(token),
        }
    }

    /// Attaches (or replaces) the cancellation token.
    pub fn with_token(mut self, token: CancelToken) -> Self {
        self.token = Some(token);
        self
    }

    /// The earlier-firing combination of two deadlines: minimum expiry,
    /// and whichever token is present (`self`'s wins when both are).
    pub fn merged(&self, other: &Deadline) -> Deadline {
        let expires = match (self.expires, other.expires) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        Deadline {
            expires,
            token: self.token.clone().or_else(|| other.token.clone()),
        }
    }

    /// True iff this deadline can never fire (no expiry, no token).
    #[inline]
    pub fn is_unlimited(&self) -> bool {
        self.expires.is_none() && self.token.is_none()
    }

    /// The wall-clock expiry, if one is armed.
    pub fn expires_at(&self) -> Option<Instant> {
        self.expires
    }

    /// Checks the abort condition: `Some(reason)` once the token is
    /// cancelled or the expiry has passed, `None` otherwise.
    ///
    /// Cancellation is checked before the clock, so an explicit cancel
    /// reports [`AbortReason::Cancelled`] even after the expiry.
    #[inline]
    pub fn poll(&self) -> Option<AbortReason> {
        if let Some(token) = &self.token {
            if token.is_cancelled() {
                return Some(AbortReason::Cancelled);
            }
        }
        // An injected failpoint deadline trips any *armed* deadline
        // (test-only; ungoverned Deadline::NONE paths stay unlimited).
        #[cfg(feature = "fault-injection")]
        if !self.is_unlimited() && crate::fault::deadline_injected() {
            return Some(AbortReason::DeadlineExceeded);
        }
        match self.expires {
            Some(at) if Instant::now() >= at => Some(AbortReason::DeadlineExceeded),
            _ => None,
        }
    }
}

/// Deadline identity, used by [`crate::ExecConfig`]'s `PartialEq`: equal
/// expiries and the *same* (pointer-equal) token.
impl PartialEq for Deadline {
    fn eq(&self, other: &Self) -> bool {
        self.expires == other.expires
            && match (&self.token, &other.token) {
                (None, None) => true,
                (Some(a), Some(b)) => a.same_as(b),
                _ => false,
            }
    }
}

impl Eq for Deadline {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_fires() {
        let d = Deadline::NONE;
        assert!(d.is_unlimited());
        assert_eq!(d.poll(), None);
        assert_eq!(Deadline::default().poll(), None);
    }

    #[test]
    fn expired_deadline_fires() {
        let d = Deadline::at(Instant::now() - Duration::from_millis(1));
        assert_eq!(d.poll(), Some(AbortReason::DeadlineExceeded));
        let far = Deadline::after(Duration::from_secs(3600));
        assert_eq!(far.poll(), None);
    }

    #[test]
    fn cancellation_fires_and_wins_over_expiry() {
        let token = CancelToken::new();
        let d = Deadline::at(Instant::now() - Duration::from_millis(1)).with_token(token.clone());
        assert_eq!(d.poll(), Some(AbortReason::DeadlineExceeded));
        token.cancel();
        assert_eq!(d.poll(), Some(AbortReason::Cancelled));
        assert!(token.is_cancelled());
        // every clone observes the shared flag
        assert!(Deadline::cancelled_by(token.clone()).poll() == Some(AbortReason::Cancelled));
    }

    #[test]
    fn merged_takes_earliest_expiry_and_any_token() {
        let soon = Instant::now() + Duration::from_millis(5);
        let late = soon + Duration::from_secs(60);
        let merged = Deadline::at(late).merged(&Deadline::at(soon));
        assert_eq!(merged.expires_at(), Some(soon));
        let token = CancelToken::new();
        let merged = Deadline::NONE.merged(&Deadline::cancelled_by(token.clone()));
        token.cancel();
        assert_eq!(merged.poll(), Some(AbortReason::Cancelled));
    }

    #[test]
    fn equality_is_identity_on_tokens() {
        let t = CancelToken::new();
        let a = Deadline::cancelled_by(t.clone());
        let b = Deadline::cancelled_by(t);
        let c = Deadline::cancelled_by(CancelToken::new());
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(Deadline::NONE, Deadline::default());
    }
}
