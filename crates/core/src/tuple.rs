//! Tuples: rows of values aligned to a schema.
//!
//! Internally a tuple over schema `X` is stored as a [`Row`] — a boxed
//! slice of [`Value`]s ordered by `X`'s sorted attribute order. The public
//! [`Tuple`] type pairs a row with its schema for type-safe construction
//! from attribute/value assignments and for display.

use crate::{Attr, CoreError, Result, Schema, Value};
use std::fmt;

/// A raw row: values in the owning schema's attribute order.
pub type Row = Box<[Value]>;

/// A tuple over an explicit schema.
///
/// `Tuple` is the safe boundary API; the hot paths inside [`crate::Bag`]
/// work on raw [`Row`]s whose schema is implied by the containing bag.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Tuple {
    schema: Schema,
    row: Row,
}

impl Tuple {
    /// Creates a tuple from a row already in schema order.
    pub fn new(schema: Schema, row: impl Into<Vec<Value>>) -> Result<Self> {
        let row: Vec<Value> = row.into();
        if row.len() != schema.arity() {
            return Err(CoreError::ArityMismatch {
                expected: schema.arity(),
                got: row.len(),
            });
        }
        Ok(Tuple {
            schema,
            row: row.into_boxed_slice(),
        })
    }

    /// Creates a tuple from an unordered attribute/value assignment.
    ///
    /// Every attribute of `schema` must be assigned exactly once.
    pub fn from_assignment(schema: &Schema, pairs: &[(Attr, Value)]) -> Result<Self> {
        if pairs.len() != schema.arity() {
            // Either a duplicate, a missing, or a foreign attribute; find
            // which for a precise error below by falling through.
        }
        let mut row = vec![None; schema.arity()];
        for &(a, v) in pairs {
            match schema.position(a) {
                Some(p) => {
                    if row[p].replace(v).is_some() {
                        return Err(CoreError::DuplicateAttr(a));
                    }
                }
                None => {
                    return Err(CoreError::NotASubschema {
                        sub: Schema::from_attrs([a]),
                        sup: schema.clone(),
                    })
                }
            }
        }
        let mut out = Vec::with_capacity(schema.arity());
        for (i, slot) in row.into_iter().enumerate() {
            match slot {
                Some(v) => out.push(v),
                None => return Err(CoreError::MissingAttr(schema.attrs()[i])),
            }
        }
        Ok(Tuple {
            schema: schema.clone(),
            row: out.into_boxed_slice(),
        })
    }

    /// The empty tuple over the empty schema.
    pub fn empty() -> Self {
        Tuple {
            schema: Schema::empty(),
            row: Box::new([]),
        }
    }

    /// The tuple's schema.
    #[inline]
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The underlying row in schema order.
    #[inline]
    pub fn row(&self) -> &[Value] {
        &self.row
    }

    /// Consumes the tuple, returning the raw row.
    #[inline]
    pub fn into_row(self) -> Row {
        self.row
    }

    /// The value of attribute `a`, if `a` is in the schema.
    pub fn get(&self, a: Attr) -> Option<Value> {
        self.schema.position(a).map(|p| self.row[p])
    }

    /// Projection `t[Z]` of the paper: the unique `Z`-tuple agreeing with
    /// `t` on `Z ⊆ X`.
    pub fn project(&self, sub: &Schema) -> Result<Tuple> {
        let idx = self.schema.projection_indices(sub)?;
        let row: Vec<Value> = idx.iter().map(|&i| self.row[i]).collect();
        Ok(Tuple {
            schema: sub.clone(),
            row: row.into_boxed_slice(),
        })
    }
}

impl fmt::Debug for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, (a, v)) in self.schema.iter().zip(self.row.iter()).enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}={v}")?;
        }
        write!(f, ")")
    }
}

/// Projects a raw row through precomputed projection indices.
///
/// `indices` must come from [`Schema::projection_indices`] for the row's
/// schema; this is the hot-path variant used by marginals and joins.
#[inline]
pub fn project_row(row: &[Value], indices: &[usize]) -> Row {
    indices.iter().map(|&i| row[i]).collect()
}

/// True iff `indices` is `[0, 1, …, k-1]` — a schema-prefix projection.
/// Sealed (lex-sorted) storage is already grouped by any such prefix,
/// which lets marginals, projections, and merge joins skip their sort.
#[inline]
pub(crate) fn is_prefix_projection(indices: &[usize]) -> bool {
    indices.iter().enumerate().all(|(i, &j)| i == j)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema(ids: &[u32]) -> Schema {
        Schema::from_attrs(ids.iter().map(|&i| Attr::new(i)))
    }

    #[test]
    fn new_checks_arity() {
        let x = schema(&[1, 2]);
        assert!(Tuple::new(x.clone(), vec![Value(1)]).is_err());
        let t = Tuple::new(x, vec![Value(1), Value(2)]).unwrap();
        assert_eq!(t.row(), &[Value(1), Value(2)]);
    }

    #[test]
    fn assignment_any_order() {
        let x = schema(&[1, 2, 3]);
        let t = Tuple::from_assignment(
            &x,
            &[
                (Attr(3), Value(30)),
                (Attr(1), Value(10)),
                (Attr(2), Value(20)),
            ],
        )
        .unwrap();
        assert_eq!(t.row(), &[Value(10), Value(20), Value(30)]);
        assert_eq!(t.get(Attr(2)), Some(Value(20)));
        assert_eq!(t.get(Attr(9)), None);
    }

    #[test]
    fn assignment_rejects_duplicates_and_missing() {
        let x = schema(&[1, 2]);
        let dup = Tuple::from_assignment(&x, &[(Attr(1), Value(1)), (Attr(1), Value(2))]);
        assert_eq!(dup.unwrap_err(), CoreError::DuplicateAttr(Attr(1)));
        let missing = Tuple::from_assignment(&x, &[(Attr(1), Value(1))]);
        assert_eq!(missing.unwrap_err(), CoreError::MissingAttr(Attr(2)));
        let foreign = Tuple::from_assignment(&x, &[(Attr(1), Value(1)), (Attr(9), Value(2))]);
        assert!(foreign.is_err());
    }

    #[test]
    fn projection_agrees_on_sub() {
        let x = schema(&[1, 2, 3]);
        let t = Tuple::new(x, vec![Value(10), Value(20), Value(30)]).unwrap();
        let p = t.project(&schema(&[3, 1])).unwrap();
        assert_eq!(p.schema(), &schema(&[1, 3]));
        assert_eq!(p.row(), &[Value(10), Value(30)]);
        // t[∅] is the empty tuple.
        let e = t.project(&Schema::empty()).unwrap();
        assert_eq!(e, Tuple::empty());
    }

    #[test]
    fn project_row_hot_path_matches_tuple_project() {
        let x = schema(&[1, 2, 3, 4]);
        let sub = schema(&[2, 4]);
        let idx = x.projection_indices(&sub).unwrap();
        let t = Tuple::new(x, vec![Value(1), Value(2), Value(3), Value(4)]).unwrap();
        let via_row = project_row(t.row(), &idx);
        let via_tuple = t.project(&sub).unwrap();
        assert_eq!(&*via_row, via_tuple.row());
    }

    #[test]
    fn display() {
        let x = schema(&[1, 2]);
        let t = Tuple::new(x, vec![Value(5), Value(7)]).unwrap();
        assert_eq!(t.to_string(), "(A1=5, A2=7)");
        assert_eq!(Tuple::empty().to_string(), "()");
    }
}
