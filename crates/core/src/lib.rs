//! # `bagcons-core`
//!
//! Data model for *Structure and Complexity of Bag Consistency*
//! (Atserias & Kolaitis, PODS 2021).
//!
//! The paper works with **relations** (functions `Tup(X) -> {0,1}`) and
//! **bags** (functions `Tup(X) -> Z_{>=0}`) over finite sets of attributes.
//! This crate provides exactly those objects plus the operations the paper
//! uses:
//!
//! * [`Attr`], [`Value`], [`Schema`]: attributes, domain elements, and sorted
//!   attribute sets.
//! * [`Bag`]: a finite multiset of `X`-tuples with `u64` multiplicities,
//!   supporting the **marginal** `R[Z]` of Equation (2) of the paper and the
//!   **bag join** `R ⋈ᵇ S`.
//! * [`Relation`]: a finite set of `X`-tuples, supporting projection and the
//!   **relational join** `R ⋈ S`.
//! * The size measures of Section 5.2: `‖R‖supp`, `‖R‖mu`, `‖R‖mb`,
//!   `‖R‖u`, `‖R‖b` ([`Bag::support_size`], [`Bag::multiplicity_bound`],
//!   [`Bag::multiplicity_size`], [`Bag::unary_size`], [`Bag::binary_size`]).
//!
//! All multiplicity arithmetic is **checked**: operations that could
//! overflow a `u64` return [`CoreError::MultiplicityOverflow`] instead of
//! wrapping, because the paper's complexity analysis (Theorem 3, Example 1)
//! is specifically about binary-encoded, i.e. potentially huge,
//! multiplicities.
//!
//! Invariants maintained by construction:
//!
//! * A [`Schema`] is a strictly sorted sequence of attributes.
//! * A [`Bag`] never stores a tuple with multiplicity `0`
//!   (so `Supp(R)` is exactly the key set).
//! * Rows are stored in schema order, so row equality is tuple equality.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attr;
pub mod bag;
pub mod error;
pub mod hash;
pub mod io;
pub mod join;
pub mod names;
pub mod relation;
pub mod schema;
pub mod semiring;
pub mod tuple;

pub use attr::{Attr, Value};
pub use bag::Bag;
pub use error::CoreError;
pub use hash::{FxBuildHasher, FxHashMap, FxHashSet};
pub use names::AttrNames;
pub use relation::Relation;
pub use schema::Schema;
pub use semiring::{KRelation, Semiring};
pub use tuple::{Row, Tuple};

/// Convenience result alias for fallible core operations.
pub type Result<T> = std::result::Result<T, CoreError>;
