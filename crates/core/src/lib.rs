//! # `bagcons-core`
//!
//! Data model for *Structure and Complexity of Bag Consistency*
//! (Atserias & Kolaitis, PODS 2021).
//!
//! The paper works with **relations** (functions `Tup(X) -> {0,1}`) and
//! **bags** (functions `Tup(X) -> Z_{>=0}`) over finite sets of attributes.
//! This crate provides exactly those objects plus the operations the paper
//! uses:
//!
//! * [`Attr`], [`Value`], [`Schema`]: attributes, domain elements, and sorted
//!   attribute sets.
//! * [`Bag`]: a finite multiset of `X`-tuples with `u64` multiplicities,
//!   supporting the **marginal** `R[Z]` of Equation (2) of the paper and the
//!   **bag join** `R ⋈ᵇ S`.
//! * [`Relation`]: a finite set of `X`-tuples, supporting projection and the
//!   **relational join** `R ⋈ S`.
//! * The size measures of Section 5.2: `‖R‖supp`, `‖R‖mu`, `‖R‖mb`,
//!   `‖R‖u`, `‖R‖b` ([`Bag::support_size`], [`Bag::multiplicity_bound`],
//!   [`Bag::multiplicity_size`], [`Bag::unary_size`], [`Bag::binary_size`]).
//!
//! All multiplicity arithmetic is **checked**: operations that could
//! overflow a `u64` return [`CoreError::MultiplicityOverflow`] instead of
//! wrapping, because the paper's complexity analysis (Theorem 3, Example 1)
//! is specifically about binary-encoded, i.e. potentially huge,
//! multiplicities.
//!
//! # Storage architecture
//!
//! Bags and relations are **columnar and arena-backed** ([`store`]):
//!
//! * a [`RowStore`] owns every distinct row of one schema in a single
//!   contiguous `Vec<Value>` (row-major) and **interns** rows — equal
//!   content maps to one dense [`RowId`], found through a flat
//!   open-addressing table. Three allocations total, regardless of row
//!   count; no per-tuple `Box<[Value]>` anywhere on the hot paths.
//! * a [`Bag`] is a `RowStore` plus a parallel `Vec<u64>` multiplicity
//!   column; a [`Relation`] is a `RowStore` alone (interning *is* set
//!   semantics). Per-row companions (flow capacities, edge ids) can be
//!   plain vectors indexed by `RowId`.
//! * **sorted runs**: a *sealed* bag/relation additionally keeps its rows
//!   in strictly increasing lexicographic order with no tombstones. Bulk
//!   constructors return sealed values; point mutations may unseal
//!   (appends that extend the run keep the seal), and [`Bag::seal`] /
//!   [`Relation::seal`] restore the invariant by one sort + compaction.
//!   Sealed data gives order-free `iter_sorted`, group-by marginals on
//!   schema prefixes (no hashing), and sort-free merge joins on prefix
//!   keys.
//!
//! Joins ([`join`]) pick their physical strategy by a size/sortedness
//! heuristic ([`join::JoinStrategy::select`]): **sort-merge** (permute
//! each side's `u32` ids by the common-key projection, match equal-key
//! runs group × group) when both sides are sort-free — sealed with
//! prefix keys — or when sharding spreads the sweep; **hash** (intern
//! one side's keys into a scratch arena with intrusive chains, probe
//! with the other) when one side is small, the size ratio is lopsided,
//! or sorts would dominate. Marginals are single columnar scans through
//! a reused scratch buffer.
//!
//! # Parallel execution
//!
//! The execution layer ([`exec`]) partitions work into contiguous
//! shards and fans it out over an **adaptive work-stealing scheduler**
//! on `std::thread::scope` (dependency-free; the build environment is
//! offline, so no rayon): shard plans are *oversubscribed*
//! ([`ExecConfig::CHUNKS_PER_WORKER`] chunks per worker), an atomic
//! cursor walks the chunk queue, and each worker claims the next chunk
//! whenever it finishes one — so a skewed plan (one giant key group
//! next to many tiny ones) no longer pins its cost to a single worker.
//! The parallelized bulk paths:
//!
//! * **merge joins** ([`join::bag_join_merge_with`]) — the left side's
//!   key-sorted run splits at join-key-group boundaries, right-side
//!   ranges align by binary search, each shard multiplies its groups out
//!   into a [`exec::ShardRun`];
//! * **hash joins** ([`join::bag_join_hash_with`]) — the small side's
//!   key index builds once and is broadcast read-only; the probe side's
//!   live ids shard into plain index ranges (probes are
//!   row-independent), each chunk emitting matches into a
//!   [`exec::ShardRun`];
//! * **prefix marginals** ([`Bag::marginal_with`]) — the sealed run
//!   splits at prefix-group boundaries and each shard runs the group-by
//!   sweep;
//! * **seal** ([`Bag::seal_with`] / [`Relation::seal_with`]) — the id
//!   permutation sorts via parallel chunk sorts plus pairwise sorted-run
//!   merges ([`exec::parallel_sort_by`]), and the re-layout copies and
//!   rehashes rows on shard workers;
//! * **flow-network middle edges** (`ConsistencyNetwork::build_with` in
//!   `bagcons-flow`) — per-shard edge buffers splice into the
//!   network-local arena; its `solve_with` seals the witness through the
//!   parallel seal.
//!
//! Shard invariants, relied on everywhere: **a shard boundary never
//! splits a key group** (boundaries slide forward to the next group
//! edge; a single giant group collapses its shards; empty shards are
//! dropped by the planner, never handed to workers), and per-shard
//! outputs are **tagged with their shard index and splice back in
//! ascending shard order** — whichever worker finished which chunk when
//! — reproducing the sequential emission order exactly. Prefix-marginal
//! outputs are therefore born sealed, and join/network/seal outputs are
//! bit-identical to their sequential counterparts at every thread
//! count. Workers hash their output rows into [`exec::ShardRun`]s, so
//! the sequential splice ([`RowStore::push_unique_hashed`]) only probes
//! the flat dedup table. An [`ExecConfig`] with `threads = 1` — the
//! default of every non-`_with` entry point — takes the unchanged
//! sequential code path.
//!
//! # Hot-loop encoding: packed key codes
//!
//! Below the thread level, the sort/merge/join inner loops are
//! compare-bound, and a row compare is a `&[Value]` slice walk. The
//! [`pack`] module collapses those walks into **single integer
//! compares**: each column gets a dense code (the value itself under
//! the *raw* tier, its rank in a sorted-unique per-column dictionary
//! under the *dictionary* tier), and the codes concatenate high-to-low
//! into one `u64`/`u128` word per row — an injective,
//! lexicographic-order-preserving encoding, so every packed compare
//! returns exactly what the slice compare would.
//!
//! Sealed [`Bag`]s/[`Relation`]s cache a [`pack::PackedView`] (rebuilt
//! by the seal, invalidated whenever the row arena grows — see
//! [`Bag::packed_view`] for the lifecycle), the seal and delta-repair
//! sorts build transient raw views, and the merge join packs both
//! sides' key columns under one shared raw spec so cross-side key
//! compares are single integer compares too. Skewed merges additionally
//! **gallop** ([`exec::gallop_bound`]): when one side is ≥
//! [`exec::GALLOP_RATIO`]× the other, run merges and key advancement
//! step by exponential search instead of linearly — same emission
//! order, bit-identical output.
//!
//! # Incremental updates
//!
//! The update unit of the incremental consistency layer is a
//! [`DeltaSet`] of signed multiplicity edits ([`delta`]).
//! [`Bag::apply_delta`] applies a batch atomically: edits that keep
//! every edited row in the support patch the multiplicity column in
//! place (a sealed bag stays sealed, no re-layout), and
//! support-changing edits repair the sorted run **incrementally** — the
//! fresh tail sorts alone and merges with the old run in one sharded
//! linear pass — never the full re-sort of [`Bag::seal`].
//!
//! Invariants maintained by construction:
//!
//! * A [`Schema`] is a strictly sorted sequence of attributes.
//! * A [`Bag`] never *reports* a tuple with multiplicity `0` (tombstones
//!   left by [`Bag::set`] are invisible to every observation and are
//!   compacted away by [`Bag::seal`]), so `Supp(R)` is exactly the live
//!   row set.
//! * Rows are stored in schema order, so row equality is tuple equality.
//! * Interning is injective on content: one distinct row, one `RowId`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attr;
pub mod bag;
pub mod cancel;
pub mod delta;
pub mod error;
pub mod exec;
pub mod fault;
pub mod hash;
pub mod io;
pub mod join;
pub mod names;
pub mod pack;
pub mod relation;
pub mod schema;
pub mod semiring;
pub mod store;
pub mod tuple;

pub use attr::{Attr, Value};
pub use bag::Bag;
pub use cancel::{AbortReason, CancelToken, Deadline};
pub use delta::{DeltaApply, DeltaEdit, DeltaSet};
pub use error::CoreError;
pub use exec::{ExecConfig, ExecConfigBuilder};
pub use hash::{FxBuildHasher, FxHashMap, FxHashSet};
pub use names::AttrNames;
pub use pack::{PackSpec, PackedView};
pub use relation::Relation;
pub use schema::Schema;
pub use semiring::{KRelation, Semiring};
pub use store::{RowId, RowStore};
pub use tuple::{Row, Tuple};

/// Convenience result alias for fallible core operations.
pub type Result<T> = std::result::Result<T, CoreError>;
