//! Positive semirings and `K`-relations (the paper's concluding remarks).
//!
//! Section 6 of the paper: "the stricter notion of consistency for bags
//! studied here makes perfectly good sense for `K`-relations as well. It
//! is an open problem whether or not the results presented here extend to
//! `K`-relations, where `K` is a positive semiring…"
//!
//! This module provides the machinery to *experiment* with that question:
//! a [`Semiring`] trait, the three canonical instances —
//!
//! * [`Bool`]-semiring `B` (relations),
//! * [`Natural`] `Z≥0` (bags; cross-checked against [`crate::Bag`]),
//! * the max-plus [`Tropical`] semiring —
//!
//! and a generic [`KRelation`] with semiring marginals and joins. The
//! test suite records what is known to carry over: the two-object
//! marginal-equality characterization (Lemma 2 (1)⟺(2)) holds for `B`
//! and — via an explicit min-construction — for the tropical semiring,
//! while the general question stays open, as in the paper.

use crate::tuple::project_row;
use crate::{CoreError, FxHashMap, Result, Row, Schema, Value};
use std::fmt;

/// A commutative semiring `(K, +, ×, 0, 1)`.
///
/// *Positivity* (no zero divisors and `a + b = 0 ⇒ a = b = 0`) is assumed
/// by the consistency notions but cannot be enforced by the type system;
/// all provided instances are positive.
pub trait Semiring: Clone + Eq + fmt::Debug {
    /// Additive identity; elements equal to `zero` are not stored.
    fn zero() -> Self;
    /// Multiplicative identity.
    fn one() -> Self;
    /// Addition (used by marginals). Checked: `None` on overflow.
    fn add(&self, other: &Self) -> Option<Self>;
    /// Multiplication (used by joins). Checked: `None` on overflow.
    fn mul(&self, other: &Self) -> Option<Self>;
}

/// The Boolean semiring `B = ({0,1}, ∨, ∧)`; `B`-relations are relations.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct Bool(pub bool);

impl Semiring for Bool {
    fn zero() -> Self {
        Bool(false)
    }
    fn one() -> Self {
        Bool(true)
    }
    fn add(&self, other: &Self) -> Option<Self> {
        Some(Bool(self.0 || other.0))
    }
    fn mul(&self, other: &Self) -> Option<Self> {
        Some(Bool(self.0 && other.0))
    }
}

/// The semiring of non-negative integers; `Natural`-relations are bags.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct Natural(pub u64);

impl Semiring for Natural {
    fn zero() -> Self {
        Natural(0)
    }
    fn one() -> Self {
        Natural(1)
    }
    fn add(&self, other: &Self) -> Option<Self> {
        self.0.checked_add(other.0).map(Natural)
    }
    fn mul(&self, other: &Self) -> Option<Self> {
        self.0.checked_mul(other.0).map(Natural)
    }
}

/// The max-plus (tropical) semiring over `Z≥0 ∪ {−∞}`:
/// `a ⊕ b = max(a,b)`, `a ⊗ b = a + b`, `0 = −∞` (`None`), `1 = 0`.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct Tropical(pub Option<u64>);

impl Tropical {
    /// A finite tropical value.
    pub fn finite(v: u64) -> Self {
        Tropical(Some(v))
    }
}

impl Semiring for Tropical {
    fn zero() -> Self {
        Tropical(None)
    }
    fn one() -> Self {
        Tropical(Some(0))
    }
    fn add(&self, other: &Self) -> Option<Self> {
        Some(Tropical(match (self.0, other.0) {
            (None, b) => b,
            (a, None) => a,
            (Some(a), Some(b)) => Some(a.max(b)),
        }))
    }
    fn mul(&self, other: &Self) -> Option<Self> {
        match (self.0, other.0) {
            (Some(a), Some(b)) => a.checked_add(b).map(|s| Tropical(Some(s))),
            _ => Some(Tropical(None)),
        }
    }
}

/// A finite `K`-relation: a function `Tup(X) → K` with finite support.
#[derive(Clone)]
pub struct KRelation<K: Semiring> {
    schema: Schema,
    rows: FxHashMap<Row, K>,
}

impl<K: Semiring> KRelation<K> {
    /// An empty `K`-relation over `schema`.
    pub fn new(schema: Schema) -> Self {
        KRelation {
            schema,
            rows: FxHashMap::default(),
        }
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Adds `value` to the annotation of `row` (semiring addition).
    pub fn insert(&mut self, row: impl Into<Vec<Value>>, value: K) -> Result<()> {
        let row: Vec<Value> = row.into();
        if row.len() != self.schema.arity() {
            return Err(CoreError::ArityMismatch {
                expected: self.schema.arity(),
                got: row.len(),
            });
        }
        if value == K::zero() {
            return Ok(());
        }
        let key = row.into_boxed_slice();
        let next = match self.rows.get(&key) {
            Some(old) => old.add(&value).ok_or(CoreError::MultiplicityOverflow)?,
            None => value,
        };
        if next == K::zero() {
            self.rows.remove(&key);
        } else {
            self.rows.insert(key, next);
        }
        Ok(())
    }

    /// The annotation of `row` (`K::zero()` when absent).
    pub fn get(&self, row: &[Value]) -> K {
        self.rows.get(row).cloned().unwrap_or_else(K::zero)
    }

    /// Number of support tuples.
    pub fn support_size(&self) -> usize {
        self.rows.len()
    }

    /// Iterates over `(row, annotation)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&[Value], &K)> + '_ {
        self.rows.iter().map(|(r, k)| (&**r, k))
    }

    /// The marginal `R[Z]`: semiring sums over collapsing tuples —
    /// Equation (2) generalized from `Z≥0` to `K`.
    pub fn marginal(&self, sub: &Schema) -> Result<KRelation<K>> {
        let idx = self.schema.projection_indices(sub)?;
        let mut out = KRelation::new(sub.clone());
        for (row, k) in &self.rows {
            out.insert(project_row(row, &idx).to_vec(), k.clone())?;
        }
        Ok(out)
    }

    /// The `K`-join: support `R' ⋈ S'`, annotations multiply — the
    /// `K`-relation analogue of the bag join.
    pub fn join(&self, other: &KRelation<K>) -> Result<KRelation<K>> {
        let plan = crate::join::JoinPlan::new(&self.schema, &other.schema);
        let z = plan.common_schema().clone();
        let self_idx = self.schema.projection_indices(&z)?;
        let other_idx = other.schema.projection_indices(&z)?;
        let mut index: FxHashMap<Row, Vec<(&[Value], &K)>> = FxHashMap::default();
        for (row, k) in self.iter() {
            index
                .entry(project_row(row, &self_idx))
                .or_default()
                .push((row, k));
        }
        let out_schema = plan.output_schema().clone();
        let mut out = KRelation::new(out_schema.clone());
        for (orow, ok) in other.iter() {
            let key = project_row(orow, &other_idx);
            let Some(matches) = index.get(&key) else {
                continue;
            };
            for &(srow, sk) in matches {
                let combined: Vec<Value> = out_schema
                    .iter()
                    .map(|a| match self.schema.position(a) {
                        Some(i) => srow[i],
                        None => orow[other.schema.position(a).expect("attr of XY")],
                    })
                    .collect();
                let prod = sk.mul(ok).ok_or(CoreError::MultiplicityOverflow)?;
                out.insert(combined, prod)?;
            }
        }
        Ok(out)
    }

    /// Two `K`-relations are *consistent* when some `K`-relation over the
    /// joint schema marginalizes to both (the paper's strict notion,
    /// verbatim from bags). This checks whether `t` is such a witness.
    pub fn witnesses(&self, other: &KRelation<K>, t: &KRelation<K>) -> Result<bool> {
        Ok(t.marginal(&self.schema)? == *self && t.marginal(&other.schema)? == *other)
    }
}

impl<K: Semiring> PartialEq for KRelation<K> {
    fn eq(&self, other: &Self) -> bool {
        self.schema == other.schema && self.rows == other.rows
    }
}

impl<K: Semiring> Eq for KRelation<K> {}

impl<K: Semiring> fmt::Debug for KRelation<K> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut rows: Vec<_> = self.rows.iter().collect();
        rows.sort_by(|a, b| a.0.cmp(b.0));
        write!(f, "KRelation({} ", self.schema)?;
        for (row, k) in rows {
            write!(f, "{row:?}:{k:?} ")?;
        }
        write!(f, ")")
    }
}

/// Converts a [`crate::Bag`] into a `Natural`-relation (they are the same
/// object; the paper: "the `Z≥0`-relations are precisely the bags").
pub fn bag_to_krelation(bag: &crate::Bag) -> KRelation<Natural> {
    let mut out = KRelation::new(bag.schema().clone());
    for (row, m) in bag.iter() {
        out.insert(row.to_vec(), Natural(m)).expect("arity matches");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Attr, Bag};

    fn schema(ids: &[u32]) -> Schema {
        Schema::from_attrs(ids.iter().map(|&i| Attr::new(i)))
    }

    #[test]
    fn natural_krelation_marginal_matches_bag_marginal() {
        let bag = Bag::from_u64s(
            schema(&[0, 1]),
            [(&[1u64, 1][..], 2), (&[1, 2][..], 3), (&[2, 1][..], 5)],
        )
        .unwrap();
        let kr = bag_to_krelation(&bag);
        let z = schema(&[0]);
        let km = kr.marginal(&z).unwrap();
        let bm = bag.marginal(&z).unwrap();
        for (row, m) in bm.iter() {
            assert_eq!(km.get(row), Natural(m));
        }
        assert_eq!(km.support_size(), bm.support_size());
    }

    #[test]
    fn bool_krelation_is_set_semantics() {
        let mut r: KRelation<Bool> = KRelation::new(schema(&[0, 1]));
        r.insert(vec![Value(1), Value(1)], Bool(true)).unwrap();
        r.insert(vec![Value(1), Value(2)], Bool(true)).unwrap();
        // re-inserting is idempotent (∨)
        r.insert(vec![Value(1), Value(1)], Bool(true)).unwrap();
        assert_eq!(r.support_size(), 2);
        let m = r.marginal(&schema(&[0])).unwrap();
        assert_eq!(m.get(&[Value(1)]), Bool(true));
        assert_eq!(m.support_size(), 1); // duplicates collapse, no counting
    }

    #[test]
    fn zero_annotations_are_not_stored() {
        let mut r: KRelation<Natural> = KRelation::new(schema(&[0]));
        r.insert(vec![Value(1)], Natural(0)).unwrap();
        assert_eq!(r.support_size(), 0);
        let mut t: KRelation<Tropical> = KRelation::new(schema(&[0]));
        t.insert(vec![Value(1)], Tropical::zero()).unwrap();
        assert_eq!(t.support_size(), 0);
        t.insert(vec![Value(1)], Tropical::finite(0)).unwrap();
        assert_eq!(t.support_size(), 1); // tropical one ≠ tropical zero
    }

    #[test]
    fn tropical_marginal_takes_max() {
        let mut r: KRelation<Tropical> = KRelation::new(schema(&[0, 1]));
        r.insert(vec![Value(1), Value(1)], Tropical::finite(3))
            .unwrap();
        r.insert(vec![Value(1), Value(2)], Tropical::finite(7))
            .unwrap();
        let m = r.marginal(&schema(&[0])).unwrap();
        assert_eq!(m.get(&[Value(1)]), Tropical::finite(7));
    }

    #[test]
    fn join_multiplies_annotations() {
        let mut r: KRelation<Natural> = KRelation::new(schema(&[0, 1]));
        r.insert(vec![Value(1), Value(2)], Natural(2)).unwrap();
        let mut s: KRelation<Natural> = KRelation::new(schema(&[1, 2]));
        s.insert(vec![Value(2), Value(5)], Natural(3)).unwrap();
        let j = r.join(&s).unwrap();
        assert_eq!(j.get(&[Value(1), Value(2), Value(5)]), Natural(6));
        // matches the Bag implementation
        let rb = Bag::from_u64s(schema(&[0, 1]), [(&[1u64, 2][..], 2)]).unwrap();
        let sb = Bag::from_u64s(schema(&[1, 2]), [(&[2u64, 5][..], 3)]).unwrap();
        let jb = crate::join::bag_join(&rb, &sb).unwrap();
        assert_eq!(jb.multiplicity(&[Value(1), Value(2), Value(5)]), 6);
    }

    #[test]
    fn boolean_lemma2_direction_join_witnesses_equal_marginals() {
        // classic set fact: if R[Z] = S[Z] then R ⋈ S witnesses — the
        // B-instance of Lemma 2 (1)⟸(2)
        let mut r: KRelation<Bool> = KRelation::new(schema(&[0, 1]));
        r.insert(vec![Value(1), Value(1)], Bool(true)).unwrap();
        r.insert(vec![Value(2), Value(1)], Bool(true)).unwrap();
        let mut s: KRelation<Bool> = KRelation::new(schema(&[1, 2]));
        s.insert(vec![Value(1), Value(5)], Bool(true)).unwrap();
        s.insert(vec![Value(1), Value(6)], Bool(true)).unwrap();
        let z = schema(&[1]);
        assert_eq!(r.marginal(&z).unwrap(), s.marginal(&z).unwrap());
        let t = r.join(&s).unwrap();
        assert!(r.witnesses(&s, &t).unwrap());
    }

    #[test]
    fn tropical_lemma2_direction_min_construction_witnesses() {
        // For max-plus: equal Z-marginals ⟹ consistent, witnessed by
        // T(xy) = min(R(x), S(y)) — an explicit construction showing the
        // two-object characterization survives in this semiring.
        let mut r: KRelation<Tropical> = KRelation::new(schema(&[0, 1]));
        r.insert(vec![Value(1), Value(1)], Tropical::finite(3))
            .unwrap();
        r.insert(vec![Value(2), Value(1)], Tropical::finite(7))
            .unwrap();
        let mut s: KRelation<Tropical> = KRelation::new(schema(&[1, 2]));
        s.insert(vec![Value(1), Value(5)], Tropical::finite(7))
            .unwrap();
        s.insert(vec![Value(1), Value(6)], Tropical::finite(2))
            .unwrap();
        let z = schema(&[1]);
        assert_eq!(r.marginal(&z).unwrap(), s.marginal(&z).unwrap());
        // min-construction over the join support
        let mut t: KRelation<Tropical> = KRelation::new(schema(&[0, 1, 2]));
        for (rrow, rk) in r.iter() {
            for (srow, sk) in s.iter() {
                if rrow[1] == srow[0] {
                    let (Some(a), Some(b)) = (rk.0, sk.0) else {
                        continue;
                    };
                    t.insert(vec![rrow[0], rrow[1], srow[1]], Tropical::finite(a.min(b)))
                        .unwrap();
                }
            }
        }
        assert!(
            r.witnesses(&s, &t).unwrap(),
            "min-construction must witness"
        );
        // note: the max-plus JOIN (sum of annotations) does NOT witness —
        // the same failure mode as bags
        let j = r.join(&s).unwrap();
        assert!(!r.witnesses(&s, &j).unwrap());
    }

    #[test]
    fn overflow_detected_in_natural_and_tropical() {
        let mut r: KRelation<Natural> = KRelation::new(schema(&[0]));
        r.insert(vec![Value(1)], Natural(u64::MAX)).unwrap();
        assert!(r.insert(vec![Value(1)], Natural(1)).is_err());
        let a = Tropical::finite(u64::MAX);
        assert!(a.mul(&Tropical::finite(1)).is_none());
    }
}
