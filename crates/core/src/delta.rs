//! Multiplicity deltas: batched signed edits against one bag.
//!
//! A [`DeltaSet`] is an ordered list of `(row, ±delta)` multiplicity
//! edits over a fixed schema — the update unit of the incremental
//! consistency layer. It models exactly the small-perturbation workload
//! of `bagcons-gen`'s `perturb` module (bump one tuple, revert it, drop
//! a row to zero) without forcing the consumer to rebuild the bag:
//! [`crate::Bag::apply_delta`] patches the multiplicity column in place
//! and repairs the sorted-run invariant incrementally.
//!
//! Edits are *signed* (`i64`) and applied atomically: the whole set is
//! validated against the target bag first (no intermediate state may
//! drive a count below zero or above `u64::MAX`), and the bag is only
//! mutated when every edit is feasible. A failed application leaves the
//! bag untouched.

use crate::{CoreError, Result, Schema, Value};

/// One signed multiplicity edit: `row`'s count changes by `delta`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeltaEdit {
    row: Vec<Value>,
    delta: i64,
}

impl DeltaEdit {
    /// The edited row (values in schema order).
    #[inline]
    pub fn row(&self) -> &[Value] {
        &self.row
    }

    /// The signed multiplicity change.
    #[inline]
    pub fn delta(&self) -> i64 {
        self.delta
    }
}

/// An ordered batch of signed multiplicity edits over one schema.
///
/// ```
/// use bagcons_core::{Bag, DeltaSet, Schema, Value};
///
/// let mut bag = Bag::from_u64s(Schema::range(0, 2), [(&[1u64, 2][..], 3)])?;
/// let mut delta = DeltaSet::new(bag.schema().clone());
/// delta.bump([Value(1), Value(2)], -1)?;          // existing row: in place
/// delta.bump([Value(5), Value(5)], 2)?;           // fresh row: reseal
/// let applied = bag.apply_delta(&delta)?;
/// assert!(applied.support_changed());
/// assert_eq!(bag.multiplicity(&[Value(1), Value(2)]), 2);
/// assert_eq!(bag.multiplicity(&[Value(5), Value(5)]), 2);
/// # Ok::<(), bagcons_core::CoreError>(())
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeltaSet {
    schema: Schema,
    edits: Vec<DeltaEdit>,
}

impl DeltaSet {
    /// An empty delta over `schema`.
    pub fn new(schema: Schema) -> Self {
        DeltaSet {
            schema,
            edits: Vec::new(),
        }
    }

    /// The schema every edit row must match.
    #[inline]
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Appends an edit changing `row`'s multiplicity by `delta`
    /// (values in schema order; a `delta` of `0` is accepted and
    /// ignored at application time).
    pub fn bump(&mut self, row: impl AsRef<[Value]>, delta: i64) -> Result<()> {
        let row = row.as_ref();
        if row.len() != self.schema.arity() {
            return Err(CoreError::ArityMismatch {
                expected: self.schema.arity(),
                got: row.len(),
            });
        }
        self.edits.push(DeltaEdit {
            row: row.to_vec(),
            delta,
        });
        Ok(())
    }

    /// [`DeltaSet::bump`] from plain `u64` values.
    pub fn bump_u64s(&mut self, row: &[u64], delta: i64) -> Result<()> {
        let vals: Vec<Value> = row.iter().copied().map(Value::new).collect();
        self.bump(vals, delta)
    }

    /// The edits, in application order.
    #[inline]
    pub fn edits(&self) -> &[DeltaEdit] {
        &self.edits
    }

    /// Number of edits.
    #[inline]
    pub fn len(&self) -> usize {
        self.edits.len()
    }

    /// True iff the delta carries no edits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.edits.is_empty()
    }
}

/// What [`crate::Bag::apply_delta`] did to the bag.
///
/// The flags drive the incremental consistency layer's repair decision:
/// a delta that left the support unchanged
/// ([`DeltaApply::support_changed`] `== false`) maps 1:1 onto
/// edge-capacity edits of an existing flow network, while a
/// support-changing delta forces the affected networks to rebuild.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DeltaApply {
    /// Rows whose (non-zero) multiplicity changed in place.
    pub touched: usize,
    /// Rows added to the support (fresh or revived).
    pub added: usize,
    /// Rows removed from the support (dropped to zero).
    pub removed: usize,
    /// True iff the sorted-run invariant had to be repaired (an
    /// incremental prefix/tail merge, not a full re-sort).
    pub resealed: bool,
    /// Net change to `‖R‖u` (the unary size), for total-tracking callers.
    pub unary_change: i128,
}

impl DeltaApply {
    /// True iff the delta changed the bag's support set (not just
    /// multiplicities of existing rows).
    #[inline]
    pub fn support_changed(&self) -> bool {
        self.added > 0 || self.removed > 0
    }

    /// True iff nothing changed at all.
    #[inline]
    pub fn is_noop(&self) -> bool {
        self.touched == 0 && self.added == 0 && self.removed == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema2() -> Schema {
        Schema::range(0, 2)
    }

    #[test]
    fn bump_checks_arity() {
        let mut d = DeltaSet::new(schema2());
        assert!(d.bump([Value(1)], 1).is_err());
        assert!(d.bump([Value(1), Value(2)], 1).is_ok());
        assert_eq!(d.len(), 1);
        assert_eq!(d.edits()[0].row(), &[Value(1), Value(2)]);
        assert_eq!(d.edits()[0].delta(), 1);
    }

    #[test]
    fn empty_delta_reports_empty() {
        let d = DeltaSet::new(schema2());
        assert!(d.is_empty());
        assert_eq!(d.len(), 0);
    }

    #[test]
    fn apply_flags() {
        let a = DeltaApply {
            touched: 1,
            added: 0,
            removed: 0,
            resealed: false,
            unary_change: 1,
        };
        assert!(!a.support_changed());
        assert!(!a.is_noop());
        let b = DeltaApply {
            touched: 0,
            added: 1,
            removed: 0,
            resealed: true,
            unary_change: 2,
        };
        assert!(b.support_changed());
    }
}
