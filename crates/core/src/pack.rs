//! Packed key codes: order-preserving integer encodings of rows.
//!
//! The sort/merge/join hot loops compare rows constantly, and a row
//! compare is a `&[Value]` slice walk — a loop with a branch per column
//! ([`crate::store`]'s `cmp_rows`). This module collapses those walks
//! into **single integer compares**: each column gets a dense code, the
//! codes concatenate high-to-low into one `u64`/`u128` word per row, and
//! lexicographic row order becomes plain integer order on the words.
//!
//! Two encoding tiers, chosen per store by [`PackSpec`]:
//!
//! * **raw** — each column's code *is* its value, truncated to the
//!   column's observed bit width (`⌈log₂(max+1)⌉` bits). Zero-cost to
//!   build beyond one max-scan, and — crucially for merge joins — words
//!   from *different* stores compare correctly as long as both were
//!   packed under one shared spec.
//! * **dictionary** — when raw widths overflow 128 bits, each column's
//!   distinct values are collected into a sorted-unique dictionary and
//!   the code is the value's rank. Ranks need only
//!   `⌈log₂(distinct)⌉` bits, so wide-value stores still often fit; the
//!   price is that codes are **store-local** (two stores' ranks are not
//!   comparable) and packing a foreign row can fail.
//!
//! Both tiers preserve lexicographic order and are injective on the rows
//! they were built from: `word(a) < word(b) ⟺ row(a) < row(b)` and
//! `word(a) == word(b) ⟺ row(a) == row(b)`. The equivalence is pinned by
//! unit tests here and property tests in the workspace suite.
//!
//! Who holds a view: sealed [`crate::Bag`]s and [`crate::Relation`]s
//! cache a [`PackedView`] (rebuilt by `seal`/`seal_with`, invalidated
//! whenever the row arena changes), the seal and delta-repair paths
//! build **transient raw views** for their sorts, and the merge join
//! packs its materialized key columns under a shared raw spec.

use crate::store::{RowId, RowStore};
use crate::Value;
use std::cmp::Ordering;

/// Below this row count a packed view is not worth building for a
/// transient sort: the slice compares on a handful of rows are cheaper
/// than one max-scan plus the word column.
pub(crate) const PACK_MIN_ROWS: usize = 16;

/// How row values map to per-column codes; see the module docs for the
/// raw/dictionary tier distinction.
#[derive(Clone, Debug)]
pub struct PackSpec {
    /// Per-column code width in bits.
    widths: Vec<u32>,
    /// Sum of `widths` (≤ 128 by construction).
    total: u32,
    /// `Some` = dictionary tier: per-column sorted-unique dictionaries,
    /// codes are ranks. `None` = raw tier: codes are the values.
    dicts: Option<Vec<Vec<Value>>>,
}

impl PackSpec {
    /// Raw-tier spec for columns whose maximum values are `maxes`.
    /// `None` when the widths sum past 128 bits or there are no columns.
    pub fn raw(maxes: &[u64]) -> Option<PackSpec> {
        if maxes.is_empty() {
            return None;
        }
        let widths: Vec<u32> = maxes.iter().map(|&m| crate::bag::bits(m)).collect();
        let total: u32 = widths.iter().sum();
        if total > 128 {
            return None;
        }
        Some(PackSpec {
            widths,
            total,
            dicts: None,
        })
    }

    /// Dictionary-tier spec for a store: per-column sorted-unique value
    /// dictionaries, rank-coded. `None` when even rank widths overflow
    /// 128 bits or the store has no columns.
    pub fn dictionary(store: &RowStore) -> Option<PackSpec> {
        let arity = store.arity();
        if arity == 0 {
            return None;
        }
        let data = store.values();
        let mut dicts: Vec<Vec<Value>> = Vec::with_capacity(arity);
        for c in 0..arity {
            let mut col: Vec<Value> = data.iter().skip(c).step_by(arity).copied().collect();
            col.sort_unstable();
            col.dedup();
            dicts.push(col);
        }
        let widths: Vec<u32> = dicts
            .iter()
            .map(|d| crate::bag::bits(d.len().saturating_sub(1) as u64))
            .collect();
        let total: u32 = widths.iter().sum();
        if total > 128 {
            return None;
        }
        Some(PackSpec {
            widths,
            total,
            dicts: Some(dicts),
        })
    }

    /// Total packed width in bits (≤ 128).
    #[inline]
    pub fn total_bits(&self) -> u32 {
        self.total
    }

    /// Packs one row into a single word, columns concatenated high-to-low
    /// so that word order equals lexicographic row order. `None` when a
    /// value exceeds its column's width (raw tier) or is absent from its
    /// column's dictionary (dictionary tier).
    pub fn pack_row(&self, row: &[Value]) -> Option<u128> {
        debug_assert_eq!(row.len(), self.widths.len());
        let mut word: u128 = 0;
        match &self.dicts {
            None => {
                for (&w, v) in self.widths.iter().zip(row) {
                    let code = v.get() as u128;
                    if code >> w != 0 {
                        return None;
                    }
                    word = (word << w) | code;
                }
            }
            Some(dicts) => {
                for ((&w, dict), v) in self.widths.iter().zip(dicts).zip(row) {
                    let code = dict.binary_search(v).ok()? as u128;
                    word = (word << w) | code;
                }
            }
        }
        Some(word)
    }
}

/// The packed word column, sized to the spec's total width.
#[derive(Clone, Debug)]
enum PackedWords {
    W64(Vec<u64>),
    W128(Vec<u128>),
}

/// An order-preserving packed-word column over a store's rows: row `i`'s
/// word is at index `i`, and comparing two words is exactly comparing
/// the two rows lexicographically.
#[derive(Clone, Debug)]
pub struct PackedView {
    spec: PackSpec,
    words: PackedWords,
}

impl PackedView {
    /// Builds a view over every row of `store`, preferring the raw tier
    /// and falling back to the dictionary tier. `None` when neither tier
    /// fits 128 bits (or the store has no columns).
    pub fn build(store: &RowStore) -> Option<PackedView> {
        Self::build_raw(store).or_else(|| {
            let spec = PackSpec::dictionary(store)?;
            Self::from_spec(store, spec)
        })
    }

    /// Raw-tier-only [`PackedView::build`]: one max-scan plus one packing
    /// pass, cheap enough for transient sort-time views. `None` when the
    /// raw widths overflow 128 bits.
    pub fn build_raw(store: &RowStore) -> Option<PackedView> {
        let arity = store.arity();
        if arity == 0 {
            return None;
        }
        let data = store.values();
        let mut maxes = vec![0u64; arity];
        for row in data.chunks_exact(arity) {
            for (m, v) in maxes.iter_mut().zip(row) {
                *m = (*m).max(v.get());
            }
        }
        let spec = PackSpec::raw(&maxes)?;
        Self::from_spec(store, spec)
    }

    fn from_spec(store: &RowStore, spec: PackSpec) -> Option<PackedView> {
        let n = store.len();
        let words = if spec.total_bits() <= 64 {
            let mut w = Vec::with_capacity(n);
            for i in 0..n {
                w.push(spec.pack_row(store.row(RowId(i as u32)))? as u64);
            }
            PackedWords::W64(w)
        } else {
            let mut w = Vec::with_capacity(n);
            for i in 0..n {
                w.push(spec.pack_row(store.row(RowId(i as u32)))?);
            }
            PackedWords::W128(w)
        };
        Some(PackedView { spec, words })
    }

    /// The spec the words were packed under.
    #[inline]
    pub fn spec(&self) -> &PackSpec {
        &self.spec
    }

    /// Number of packed rows.
    pub fn len(&self) -> usize {
        match &self.words {
            PackedWords::W64(w) => w.len(),
            PackedWords::W128(w) => w.len(),
        }
    }

    /// True iff the view covers no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Row `i`'s packed word (zero-extended to `u128`).
    #[inline]
    pub fn word(&self, i: u32) -> u128 {
        match &self.words {
            PackedWords::W64(w) => w[i as usize] as u128,
            PackedWords::W128(w) => w[i as usize],
        }
    }

    /// Compares rows `a` and `b` — a single integer compare, equal to the
    /// lexicographic compare of the underlying rows.
    #[inline]
    pub fn cmp(&self, a: u32, b: u32) -> Ordering {
        match &self.words {
            PackedWords::W64(w) => w[a as usize].cmp(&w[b as usize]),
            PackedWords::W128(w) => w[a as usize].cmp(&w[b as usize]),
        }
    }
}

/// Row-id ordering over one store, through the packed view when one fits
/// and the slice compare otherwise. The seal and delta-repair sorts go
/// through this so their hot loops are integer compares whenever
/// possible while staying bit-identical to the slice path.
pub(crate) struct RowOrd<'a> {
    store: &'a RowStore,
    view: Option<PackedView>,
}

impl<'a> RowOrd<'a> {
    /// Builds a transient raw-tier ordering for `store`. `expected_rows`
    /// is the number of rows the caller will actually compare — below
    /// [`PACK_MIN_ROWS`] the view is skipped outright.
    pub(crate) fn new(store: &'a RowStore, expected_rows: usize) -> Self {
        let view = if expected_rows >= PACK_MIN_ROWS {
            PackedView::build_raw(store)
        } else {
            None
        };
        RowOrd { store, view }
    }

    /// Compares rows `a` and `b` lexicographically.
    #[inline]
    pub(crate) fn cmp(&self, a: u32, b: u32) -> Ordering {
        match &self.view {
            Some(v) => v.cmp(a, b),
            None => crate::store::cmp_rows(self.store, a, b),
        }
    }

    /// `row(a) < row(b)`.
    #[inline]
    pub(crate) fn less(&self, a: u32, b: u32) -> bool {
        self.cmp(a, b) == Ordering::Less
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store_of(rows: &[&[u64]]) -> RowStore {
        let mut s = RowStore::new(rows[0].len());
        for r in rows {
            let vals: Vec<Value> = r.iter().copied().map(Value::new).collect();
            s.intern(&vals);
        }
        s
    }

    fn assert_view_matches_slices(store: &RowStore, view: &PackedView) {
        let n = store.len() as u32;
        for a in 0..n {
            for b in 0..n {
                assert_eq!(
                    view.cmp(a, b),
                    store.row(RowId(a)).cmp(store.row(RowId(b))),
                    "rows {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn raw_view_orders_like_slices() {
        let s = store_of(&[&[3, 1, 4], &[1, 5, 9], &[2, 6, 5], &[3, 1, 5], &[0, 0, 0]]);
        let view = PackedView::build_raw(&s).expect("small values fit raw");
        assert_eq!(view.len(), 5);
        assert_view_matches_slices(&s, &view);
    }

    #[test]
    fn raw_view_with_wide_values_uses_w128_or_dict() {
        // Two u64-wide columns: raw needs 128 bits — still fits (W128).
        let s = store_of(&[&[u64::MAX, 1], &[1, u64::MAX], &[u64::MAX, u64::MAX]]);
        let view = PackedView::build_raw(&s).expect("128 bits exactly");
        assert!(view.spec().total_bits() > 64);
        assert_view_matches_slices(&s, &view);
        // Three wide columns: raw overflows, dictionary tier takes over.
        let s3 = store_of(&[
            &[u64::MAX, 1, u64::MAX - 7],
            &[1, u64::MAX, 2],
            &[u64::MAX - 1, 3, u64::MAX],
        ]);
        assert!(PackedView::build_raw(&s3).is_none());
        let view = PackedView::build(&s3).expect("3 distinct values rank-code in 2 bits");
        assert_view_matches_slices(&s3, &view);
    }

    #[test]
    fn arity_zero_has_no_view() {
        let mut s = RowStore::new(0);
        s.intern(&[]);
        assert!(PackedView::build(&s).is_none());
    }

    #[test]
    fn packing_is_injective_on_distinct_rows() {
        let s = store_of(&[&[1, 2], &[2, 1], &[1, 3], &[3, 1], &[2, 3]]);
        let view = PackedView::build_raw(&s).unwrap();
        for a in 0..s.len() as u32 {
            for b in 0..s.len() as u32 {
                assert_eq!(view.word(a) == view.word(b), a == b);
            }
        }
    }

    #[test]
    fn shared_raw_spec_compares_across_stores() {
        // The merge join packs both sides' keys under one spec built from
        // the joint column maxes; words must then compare cross-store.
        let left = store_of(&[&[1, 7], &[5, 2]]);
        let right = store_of(&[&[3, 9], &[5, 1]]);
        let spec = PackSpec::raw(&[5, 9]).unwrap();
        for lrow in left.iter() {
            for rrow in right.iter() {
                let lw = spec.pack_row(lrow).unwrap();
                let rw = spec.pack_row(rrow).unwrap();
                assert_eq!(lw.cmp(&rw), lrow.cmp(rrow));
            }
        }
    }

    #[test]
    fn pack_row_rejects_out_of_spec_values() {
        let spec = PackSpec::raw(&[3, 3]).unwrap(); // 2 bits per column
        assert!(spec.pack_row(&[Value(3), Value(3)]).is_some());
        assert!(spec.pack_row(&[Value(4), Value(0)]).is_none());
    }

    #[test]
    fn dictionary_tier_rejects_foreign_values() {
        let s = store_of(&[
            &[u64::MAX, 1, u64::MAX - 7],
            &[1, u64::MAX, 2],
            &[u64::MAX - 1, 3, u64::MAX],
        ]);
        let view = PackedView::build(&s).unwrap();
        assert!(view
            .spec()
            .pack_row(&[Value(2), Value(1), Value(2)])
            .is_none());
    }
}
