//! Joins under set and bag semantics.
//!
//! Section 2 of the paper defines, for `R(X)` and `S(Y)`:
//!
//! * the **relational join** `R ⋈ S`: all `XY`-tuples `xy` with `x ∈ R'`,
//!   `y ∈ S'` and `x[X∩Y] = y[X∩Y]`;
//! * the **bag join** `R ⋈ᵇ S`: support `R' ⋈ S'` and multiplicity
//!   `(R ⋈ᵇ S)(t) = R(t[X]) × S(t[Y])`.
//!
//! Both are implemented as hash joins on the common attributes. A
//! [`JoinPlan`] precomputes the index arithmetic (key extraction and
//! output-row assembly) so multiway joins and repeated joins don't redo it.

use crate::tuple::project_row;
use crate::{Bag, CoreError, FxHashMap, Relation, Result, Row, Schema, Value};

/// Which operand of a join a value comes from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Side {
    Left,
    Right,
}

/// Precomputed index arithmetic for joining schemas `X` and `Y`.
#[derive(Clone, Debug)]
pub struct JoinPlan {
    /// The output schema `XY = X ∪ Y`.
    out: Schema,
    /// The common schema `Z = X ∩ Y`.
    common: Schema,
    /// Positions of `Z` inside `X`.
    left_key: Vec<usize>,
    /// Positions of `Z` inside `Y`.
    right_key: Vec<usize>,
    /// For each output position: where its value comes from.
    sources: Vec<(Side, usize)>,
}

impl JoinPlan {
    /// Builds a plan for joining `left` with `right`.
    pub fn new(left: &Schema, right: &Schema) -> Self {
        let out = left.union(right);
        let common = left.intersection(right);
        let left_key = left.projection_indices(&common).expect("Z ⊆ X by construction");
        let right_key = right.projection_indices(&common).expect("Z ⊆ Y by construction");
        let sources = out
            .iter()
            .map(|a| match left.position(a) {
                Some(i) => (Side::Left, i),
                None => (Side::Right, right.position(a).expect("attr in X ∪ Y")),
            })
            .collect();
        JoinPlan { out, common, left_key, right_key, sources }
    }

    /// The output schema `X ∪ Y`.
    pub fn output_schema(&self) -> &Schema {
        &self.out
    }

    /// The common schema `X ∩ Y`.
    pub fn common_schema(&self) -> &Schema {
        &self.common
    }

    /// Assembles the joined row `xy` from matching halves.
    #[inline]
    fn combine(&self, left: &[Value], right: &[Value]) -> Row {
        self.sources
            .iter()
            .map(|&(side, i)| match side {
                Side::Left => left[i],
                Side::Right => right[i],
            })
            .collect()
    }
}

/// The bag join `R ⋈ᵇ S` of Section 2.
///
/// Multiplicities multiply; overflow yields
/// [`CoreError::MultiplicityOverflow`]. Note the paper's warning (Section 3):
/// the bag join of two *consistent* bags need **not** witness their
/// consistency — this function computes the algebraic join, nothing more.
pub fn bag_join(r: &Bag, s: &Bag) -> Result<Bag> {
    let plan = JoinPlan::new(r.schema(), s.schema());
    let mut right_index: FxHashMap<Row, Vec<(&[Value], u64)>> = FxHashMap::default();
    for (row, m) in s.iter() {
        right_index.entry(project_row(row, &plan.right_key)).or_default().push((row, m));
    }
    let mut out = Bag::new(plan.out.clone());
    for (lrow, lm) in r.iter() {
        let key = project_row(lrow, &plan.left_key);
        if let Some(matches) = right_index.get(&key) {
            for &(rrow, rm) in matches {
                let m = lm.checked_mul(rm).ok_or(CoreError::MultiplicityOverflow)?;
                out.insert(plan.combine(lrow, rrow).to_vec(), m)?;
            }
        }
    }
    Ok(out)
}

/// The relational join `R ⋈ S` of Section 2.
pub fn relation_join(r: &Relation, s: &Relation) -> Relation {
    let plan = JoinPlan::new(r.schema(), s.schema());
    let mut right_index: FxHashMap<Row, Vec<&[Value]>> = FxHashMap::default();
    for row in s.iter() {
        right_index.entry(project_row(row, &plan.right_key)).or_default().push(row);
    }
    let mut out = Relation::new(plan.out.clone());
    for lrow in r.iter() {
        let key = project_row(lrow, &plan.left_key);
        if let Some(matches) = right_index.get(&key) {
            for rrow in matches {
                out.insert_row_unchecked(plan.combine(lrow, rrow));
            }
        }
    }
    out
}

/// The multiway relational join `R₁ ⋈ ⋯ ⋈ R_m` (left fold).
///
/// The empty join is the unit relation (empty tuple over `∅`). This is
/// `J = R'₁ ⋈ ⋯ ⋈ R'_m`, the candidate-witness support of Lemma 1 and the
/// variable set of the linear program `P(R₁,…,R_m)` of Section 5.2 —
/// beware that its size can grow exponentially in `m`.
pub fn multi_relation_join(rels: &[&Relation]) -> Relation {
    let mut acc = Relation::unit();
    for r in rels {
        acc = relation_join(&acc, r);
    }
    acc
}

/// The multiway bag join `R₁ ⋈ᵇ ⋯ ⋈ᵇ R_m` (left fold; empty = unit bag).
pub fn multi_bag_join(bags: &[&Bag]) -> Result<Bag> {
    let mut acc = Relation::unit().to_bag();
    for b in bags {
        acc = bag_join(&acc, b)?;
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Attr;

    fn schema(ids: &[u32]) -> Schema {
        Schema::from_attrs(ids.iter().map(|&i| Attr::new(i)))
    }

    #[test]
    fn bag_join_multiplies_multiplicities() {
        // R(A,B) = {(1,2):2}, S(B,C) = {(2,5):3} -> R⋈ᵇS = {(1,2,5):6}
        let r = Bag::from_u64s(schema(&[0, 1]), [(&[1u64, 2][..], 2)]).unwrap();
        let s = Bag::from_u64s(schema(&[1, 2]), [(&[2u64, 5][..], 3)]).unwrap();
        let j = bag_join(&r, &s).unwrap();
        assert_eq!(j.schema(), &schema(&[0, 1, 2]));
        assert_eq!(j.multiplicity(&[Value(1), Value(2), Value(5)]), 6);
        assert_eq!(j.support_size(), 1);
    }

    #[test]
    fn bag_join_respects_common_attrs() {
        let r = Bag::from_u64s(schema(&[0, 1]), [(&[1u64, 2][..], 1), (&[1, 3][..], 1)]).unwrap();
        let s = Bag::from_u64s(schema(&[1, 2]), [(&[2u64, 9][..], 1)]).unwrap();
        let j = bag_join(&r, &s).unwrap();
        // only the (1,2) row of r matches B=2
        assert_eq!(j.support_size(), 1);
        assert_eq!(j.multiplicity(&[Value(1), Value(2), Value(9)]), 1);
    }

    #[test]
    fn join_with_disjoint_schemas_is_cartesian_product() {
        let r = Bag::from_u64s(schema(&[0]), [(&[1u64][..], 2), (&[2][..], 1)]).unwrap();
        let s = Bag::from_u64s(schema(&[1]), [(&[7u64][..], 3)]).unwrap();
        let j = bag_join(&r, &s).unwrap();
        assert_eq!(j.support_size(), 2);
        assert_eq!(j.multiplicity(&[Value(1), Value(7)]), 6);
        assert_eq!(j.multiplicity(&[Value(2), Value(7)]), 3);
    }

    #[test]
    fn join_support_law() {
        // (R ⋈ᵇ S)' = R' ⋈ S'
        let r = Bag::from_u64s(
            schema(&[0, 1]),
            [(&[1u64, 2][..], 2), (&[2, 2][..], 5), (&[3, 4][..], 1)],
        )
        .unwrap();
        let s = Bag::from_u64s(
            schema(&[1, 2]),
            [(&[2u64, 1][..], 7), (&[2, 2][..], 1), (&[9, 9][..], 3)],
        )
        .unwrap();
        let lhs = bag_join(&r, &s).unwrap().support();
        let rhs = relation_join(&r.support(), &s.support());
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn relation_join_identity_with_unit() {
        let r = Relation::from_u64s(schema(&[0, 1]), [&[1u64, 2][..]]).unwrap();
        let j = relation_join(&Relation::unit(), &r);
        assert_eq!(j, r);
        let j2 = relation_join(&r, &Relation::unit());
        assert_eq!(j2, r);
    }

    #[test]
    fn self_join_on_same_schema_is_intersection() {
        let r = Relation::from_u64s(schema(&[0]), [&[1u64][..], &[2][..]]).unwrap();
        let s = Relation::from_u64s(schema(&[0]), [&[2u64][..], &[3][..]]).unwrap();
        let j = relation_join(&r, &s);
        assert_eq!(j.len(), 1);
        assert!(j.contains(&[Value(2)]));
    }

    #[test]
    fn multi_join_triangle() {
        // R(AB)={00,11}, S(BC)={01,10}, T(AC)={00,11}: pairwise consistent
        // relations whose 3-way join is empty (Section 4 example).
        let r = Relation::from_u64s(schema(&[0, 1]), [&[0u64, 0][..], &[1, 1][..]]).unwrap();
        let s = Relation::from_u64s(schema(&[1, 2]), [&[0u64, 1][..], &[1, 0][..]]).unwrap();
        let t = Relation::from_u64s(schema(&[0, 2]), [&[0u64, 0][..], &[1, 1][..]]).unwrap();
        let j = multi_relation_join(&[&r, &s, &t]);
        assert!(j.is_empty());
        // but R ⋈ S alone is not empty
        let rs = relation_join(&r, &s);
        assert_eq!(rs.len(), 2);
    }

    #[test]
    fn multi_bag_join_associates_with_pairwise() {
        let r = Bag::from_u64s(schema(&[0, 1]), [(&[1u64, 1][..], 2)]).unwrap();
        let s = Bag::from_u64s(schema(&[1, 2]), [(&[1u64, 1][..], 3)]).unwrap();
        let t = Bag::from_u64s(schema(&[2, 3]), [(&[1u64, 1][..], 5)]).unwrap();
        let j1 = multi_bag_join(&[&r, &s, &t]).unwrap();
        let j2 = bag_join(&bag_join(&r, &s).unwrap(), &t).unwrap();
        assert_eq!(j1, j2);
        assert_eq!(j1.multiplicity(&[Value(1); 4]), 30);
    }

    #[test]
    fn overflow_in_join_detected() {
        let r = Bag::from_u64s(schema(&[0]), [(&[1u64][..], u64::MAX)]).unwrap();
        let s = Bag::from_u64s(schema(&[1]), [(&[1u64][..], 2)]).unwrap();
        assert_eq!(bag_join(&r, &s), Err(CoreError::MultiplicityOverflow));
    }

    #[test]
    fn plan_exposes_schemas() {
        let plan = JoinPlan::new(&schema(&[0, 1]), &schema(&[1, 2]));
        assert_eq!(plan.output_schema(), &schema(&[0, 1, 2]));
        assert_eq!(plan.common_schema(), &schema(&[1]));
    }
}
