//! Joins under set and bag semantics.
//!
//! Section 2 of the paper defines, for `R(X)` and `S(Y)`:
//!
//! * the **relational join** `R ⋈ S`: all `XY`-tuples `xy` with `x ∈ R'`,
//!   `y ∈ S'` and `x[X∩Y] = y[X∩Y]`;
//! * the **bag join** `R ⋈ᵇ S`: support `R' ⋈ S'` and multiplicity
//!   `(R ⋈ᵇ S)(t) = R(t[X]) × S(t[Y])`.
//!
//! Both run over the columnar [`crate::store::RowStore`] arenas, in one
//! of two physical strategies selected by a size heuristic
//! ([`JoinStrategy::select`]):
//!
//! * **sort-merge** — both sides' row ids are sorted by their projection
//!   onto the common schema `Z` (a `u32` permutation sort; no row data
//!   moves), then equal-key *runs* are matched group against group. A
//!   sealed operand whose `Z`-columns form a schema prefix skips its
//!   sort entirely — its sorted run is already grouped by key.
//! * **hash** — the smaller side's keys are interned into a scratch
//!   key arena with intrusive chains (flat vectors, no per-key boxes),
//!   and the larger side probes.
//!
//! Sort-merge wins once both sides are large (cache-friendly sequential
//! scans, no hash-table build); hashing wins when one side is small
//! enough that `O(small)` build + `O(large)` probe beats sorting the
//! large side. The crossover `MERGE_MIN` is coarse by design.
//!
//! Joined rows are assembled in a reused scratch buffer and appended to
//! the output arena: the whole path performs **zero per-tuple
//! `Box<[Value]>` allocations**. A [`JoinPlan`] precomputes the index
//! arithmetic (key extraction and output-row assembly) so multiway joins
//! and repeated joins don't redo it.

use crate::exec::{ExecConfig, ShardRun, ShardedRowStore};
use crate::store::RowStore;
use crate::{Bag, CoreError, Relation, Result, Schema, Value};
use std::cmp::Ordering;

/// Which operand of a join a value comes from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Side {
    Left,
    Right,
}

/// Below this support size (on either side), hashing the smaller side
/// beats any merge; at or above it the finer heuristic of
/// [`JoinStrategy::select`] applies.
const MERGE_MIN: usize = 64;

/// When one side is at least this many times larger than the other,
/// building a key index on the small side and probing with the large one
/// beats putting the large side through a merge: `O(small)` build +
/// `O(large)` probe vs an `O(large log large)` sort.
const HASH_RATIO: usize = 8;

/// Size and sortedness statistics of one join operand, the inputs to
/// [`JoinStrategy::select`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct JoinSide {
    /// Support size (`‖R‖supp` for bags, `|R|` for relations).
    pub support: usize,
    /// True iff the operand is sealed **and** the join key is a prefix of
    /// its schema — its sorted run doubles as the key order, so the merge
    /// path gets this side's sort for free.
    pub sorted: bool,
    /// True iff the operand already holds a materialized packed-word
    /// view ([`crate::pack::PackedView`]): its merge-side compares are
    /// single integer compares, shifting the merge-vs-hash crossover.
    pub packed: bool,
}

impl JoinSide {
    /// Builds the statistics from explicit values (`packed` defaults to
    /// false; see [`JoinSide::with_packed`]).
    pub fn new(support: usize, sorted: bool) -> Self {
        JoinSide {
            support,
            sorted,
            packed: false,
        }
    }

    /// Overrides the packed-view availability flag.
    pub fn with_packed(mut self, packed: bool) -> Self {
        self.packed = packed;
        self
    }

    /// Statistics of a bag operand whose key columns are `key`.
    pub fn of_bag(bag: &Bag, key: &[usize]) -> Self {
        JoinSide {
            support: bag.support_size(),
            sorted: bag.is_sealed() && crate::tuple::is_prefix_projection(key),
            packed: bag.packed_ready(),
        }
    }

    /// Statistics of a relation operand whose key columns are `key`.
    pub fn of_relation(rel: &Relation, key: &[usize]) -> Self {
        JoinSide {
            support: rel.len(),
            sorted: rel.is_sealed() && crate::tuple::is_prefix_projection(key),
            packed: rel.packed_ready(),
        }
    }
}

/// The physical join strategy; exposed so benchmarks and the harness can
/// pin either path explicitly.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JoinStrategy {
    /// Sort both sides by the common-key projection, match runs.
    SortMerge,
    /// Build a key index on the right side, probe with the left.
    Hash,
}

impl JoinStrategy {
    /// The sequential strategy heuristic. Calibrated against BENCH_e12:
    ///
    /// * either side below `MERGE_MIN` → **hash** (build the small
    ///   side, probe the large);
    /// * both sides sort-free (sealed with prefix keys) → **merge** —
    ///   a pure linear sweep, no sort and no table build;
    /// * size ratio ≥ `HASH_RATIO` → **hash**: probing the large side
    ///   beats putting it through a sort;
    /// * otherwise → **hash**: when at least one side must be sorted,
    ///   BENCH_e12 has hash edging out merge at every measured support
    ///   (0.51 ms vs 0.61 ms at 4096). [`JoinStrategy::select_with`]
    ///   flips this case to merge when sharding can spread the sweep
    ///   across threads.
    pub fn select(left: JoinSide, right: JoinSide) -> Self {
        Self::select_with(left, right, &ExecConfig::sequential())
    }

    /// [`JoinStrategy::select`] under an execution configuration. Both
    /// physical strategies now parallelize under `cfg` — the merge
    /// shards its group sweep at key boundaries, the hash join
    /// broadcasts its build side and shards the probe
    /// ([`bag_join_hash_with`]) — so the choice reduces to the
    /// *sequential* work each strategy cannot shard away: the sorts (for
    /// merge) vs the index build on the small side (for hash). Hence:
    /// comparable sizes with at least one sort-free side pick merge when
    /// `cfg` shards them (its leftover sequential work is ~nothing),
    /// while lopsided or unsorted inputs keep hash, whose `O(small)`
    /// build is the only part that stays on one thread.
    pub fn select_with(left: JoinSide, right: JoinSide, cfg: &ExecConfig) -> Self {
        let small = left.support.min(right.support);
        let large = left.support.max(right.support);
        if small < MERGE_MIN {
            JoinStrategy::Hash
        } else if left.sorted && right.sorted {
            JoinStrategy::SortMerge
        } else if large >= HASH_RATIO * small {
            JoinStrategy::Hash
        } else if (left.sorted && left.packed) || (right.sorted && right.packed) {
            // A sort-free side with a live packed view makes the merge
            // sweep single integer compares — cheaper than the
            // sequential-residue model above assumes, so take the merge
            // even without sharding.
            JoinStrategy::SortMerge
        } else if (left.sorted || right.sorted) && cfg.shards_for(small) > 1 {
            // `small` mirrors what the merge body actually shards on: if
            // it would fall back to one shard, claim no parallel win.
            JoinStrategy::SortMerge
        } else {
            JoinStrategy::Hash
        }
    }
}

/// Precomputed index arithmetic for joining schemas `X` and `Y`.
#[derive(Clone, Debug)]
pub struct JoinPlan {
    /// The output schema `XY = X ∪ Y`.
    out: Schema,
    /// The common schema `Z = X ∩ Y`.
    common: Schema,
    /// Positions of `Z` inside `X`.
    left_key: Vec<usize>,
    /// Positions of `Z` inside `Y`.
    right_key: Vec<usize>,
    /// For each output position: where its value comes from.
    sources: Vec<(Side, usize)>,
}

impl JoinPlan {
    /// Builds a plan for joining `left` with `right`.
    pub fn new(left: &Schema, right: &Schema) -> Self {
        let out = left.union(right);
        let common = left.intersection(right);
        let left_key = left
            .projection_indices(&common)
            .expect("Z ⊆ X by construction");
        let right_key = right
            .projection_indices(&common)
            .expect("Z ⊆ Y by construction");
        let sources = out
            .iter()
            .map(|a| match left.position(a) {
                Some(i) => (Side::Left, i),
                None => (Side::Right, right.position(a).expect("attr in X ∪ Y")),
            })
            .collect();
        JoinPlan {
            out,
            common,
            left_key,
            right_key,
            sources,
        }
    }

    /// The output schema `X ∪ Y`.
    pub fn output_schema(&self) -> &Schema {
        &self.out
    }

    /// The common schema `X ∩ Y`.
    pub fn common_schema(&self) -> &Schema {
        &self.common
    }

    /// Assembles the joined row `xy` into `buf` (cleared first).
    #[inline]
    pub fn combine_into(&self, left: &[Value], right: &[Value], buf: &mut Vec<Value>) {
        buf.clear();
        buf.extend(self.sources.iter().map(|&(side, i)| match side {
            Side::Left => left[i],
            Side::Right => right[i],
        }));
    }
}

/// Compares two rows (possibly from different stores) by their key
/// projections.
#[inline]
fn cmp_keys(a: &[Value], a_idx: &[usize], b: &[Value], b_idx: &[usize]) -> Ordering {
    debug_assert_eq!(a_idx.len(), b_idx.len());
    for (&i, &j) in a_idx.iter().zip(b_idx) {
        match a[i].cmp(&b[j]) {
            Ordering::Equal => continue,
            ord => return ord,
        }
    }
    Ordering::Equal
}

/// One side of a merge join: row ids sorted by key projection, with the
/// projected keys **materialized** into one flat columnar buffer aligned
/// with the sorted order. The sort and merge sweep then touch only this
/// contiguous buffer — no per-comparison trips back into the row arena.
///
/// When the pair's joint key values fit a raw packed encoding
/// ([`crate::pack::PackSpec::raw`] over the per-column maxes of **both**
/// sides, ≤ 64 bits total), each side additionally carries a `u64` word
/// per key packed under that shared spec — so the sort, the merge-sweep
/// compares, the run-end scans, and the shard alignment all become
/// single integer compares that are valid *across* the two sides. The
/// encoding is injective and order-preserving on the joint key space,
/// so every result is bit-identical to the slice-compare path. Both
/// sides of a pair are packed, or neither is.
struct KeyedSide {
    /// Row ids in key order.
    ids: Vec<u32>,
    /// `ids.len() * k` values: the key of `ids[p]` is `keys[p*k..(p+1)*k]`.
    keys: Vec<Value>,
    /// Key width.
    k: usize,
    /// Packed key words aligned with `ids`, under the pair's shared spec.
    packed: Option<Vec<u64>>,
    /// False pins the pre-packing behavior (slice compares, linear
    /// advancement) — the bench/CI baseline path.
    hot: bool,
}

/// The raw inputs of one [`KeyedSide`] before projection and sorting.
struct SideInput<'a> {
    store: &'a RowStore,
    ids: Vec<u32>,
    key: &'a [usize],
    sealed: bool,
}

/// Builds both sides of a merge join together, so their packed key words
/// share one spec (see [`KeyedSide`]). `hot = false` disables packing
/// *and* gallop advancement — the pre-change baseline for benchmarks.
fn build_keyed_pair(l: SideInput<'_>, r: SideInput<'_>, hot: bool) -> (KeyedSide, KeyedSide) {
    let k = l.key.len();
    debug_assert_eq!(k, r.key.len());
    let extract = |input: &SideInput<'_>| -> Vec<Value> {
        let mut keys: Vec<Value> = Vec::with_capacity(input.ids.len() * k);
        for &a in &input.ids {
            let row = input.store.row(crate::store::RowId(a));
            keys.extend(input.key.iter().map(|&c| row[c]));
        }
        keys
    };
    let lk = extract(&l);
    let rk = extract(&r);
    let spec = if hot && k > 0 {
        let mut maxes = vec![0u64; k];
        for keys in [&lk, &rk] {
            for key in keys.chunks_exact(k) {
                for (m, v) in maxes.iter_mut().zip(key) {
                    *m = (*m).max(v.get());
                }
            }
        }
        crate::pack::PackSpec::raw(&maxes).filter(|s| s.total_bits() <= 64)
    } else {
        None
    };
    let pack = |keys: &[Value]| -> Option<Vec<u64>> {
        let spec = spec.as_ref()?;
        Some(
            keys.chunks_exact(k)
                .map(|key| {
                    spec.pack_row(key)
                        .expect("joint per-column maxes cover both sides")
                        as u64
                })
                .collect(),
        )
    };
    let lp = pack(&lk);
    let rp = pack(&rk);
    (finish_side(l, lk, lp, hot), finish_side(r, rk, rp, hot))
}

/// Sorts one side's permutation by `(key, id)` — through the packed
/// words when available (identical order: the shared raw spec is
/// injective and order-preserving on keys) — and lays ids/keys/words out
/// in that order. A sealed operand whose key is a schema prefix skips
/// the sort: its storage order is already grouped by key.
fn finish_side(
    input: SideInput<'_>,
    keys: Vec<Value>,
    packed: Option<Vec<u64>>,
    hot: bool,
) -> KeyedSide {
    let k = input.key.len();
    let ids = input.ids;
    if input.sealed && crate::tuple::is_prefix_projection(input.key) {
        // lex-sorted rows are sorted (and grouped) by any prefix
        return KeyedSide {
            ids,
            keys,
            k,
            packed,
            hot,
        };
    }
    let mut order: Vec<u32> = (0..ids.len() as u32).collect();
    match &packed {
        Some(words) => order.sort_unstable_by(|&p, &q| {
            let (p, q) = (p as usize, q as usize);
            words[p].cmp(&words[q]).then_with(|| ids[p].cmp(&ids[q]))
        }),
        None => order.sort_unstable_by(|&p, &q| {
            let (p, q) = (p as usize, q as usize);
            keys[p * k..(p + 1) * k]
                .cmp(&keys[q * k..(q + 1) * k])
                .then_with(|| ids[p].cmp(&ids[q]))
        }),
    }
    let sorted_ids: Vec<u32> = order.iter().map(|&p| ids[p as usize]).collect();
    let mut sorted_keys: Vec<Value> = Vec::with_capacity(keys.len());
    for &p in &order {
        let p = p as usize;
        sorted_keys.extend_from_slice(&keys[p * k..(p + 1) * k]);
    }
    let sorted_packed = packed.map(|words| {
        order
            .iter()
            .map(|&p| words[p as usize])
            .collect::<Vec<u64>>()
    });
    KeyedSide {
        ids: sorted_ids,
        keys: sorted_keys,
        k,
        packed: sorted_packed,
        hot,
    }
}

impl KeyedSide {
    /// The key at sorted position `p`.
    #[inline]
    fn key(&self, p: usize) -> &[Value] {
        &self.keys[p * self.k..(p + 1) * self.k]
    }

    /// Compares this side's key at `i` with `other`'s key at `j`: one
    /// integer compare when the pair is packed (the words share a spec),
    /// a slice compare otherwise.
    #[inline]
    fn cmp_at(&self, other: &KeyedSide, i: usize, j: usize) -> Ordering {
        match (&self.packed, &other.packed) {
            (Some(a), Some(b)) => a[i].cmp(&b[j]),
            _ => self.key(i).cmp(other.key(j)),
        }
    }

    /// True iff positions `p` and `q` of this side hold equal keys.
    #[inline]
    fn same_key(&self, p: usize, q: usize) -> bool {
        match &self.packed {
            Some(w) => w[p] == w[q],
            None => self.key(p) == self.key(q),
        }
    }

    /// End of the equal-key run starting at `start`.
    #[inline]
    fn run_end(&self, start: usize) -> usize {
        let mut end = start + 1;
        while end < self.ids.len() && self.same_key(start, end) {
            end += 1;
        }
        end
    }

    /// First sorted position whose key is `>=` the key at `other`'s
    /// position `p` (binary search; the shard planner aligns right-side
    /// ranges to left-side boundaries with this).
    fn lower_bound_at(&self, other: &KeyedSide, p: usize) -> usize {
        match (&self.packed, &other.packed) {
            (Some(a), Some(b)) => {
                let target = b[p];
                crate::exec::lower_bound_by(self.ids.len(), |q| a[q] < target)
            }
            _ => {
                let key = other.key(p);
                crate::exec::lower_bound_by(self.ids.len(), |q| self.key(q) < key)
            }
        }
    }
}

/// The bag join `R ⋈ᵇ S` of Section 2, strategy chosen by
/// [`JoinStrategy::select`].
///
/// Multiplicities multiply; overflow yields
/// [`CoreError::MultiplicityOverflow`]. Note the paper's warning (Section 3):
/// the bag join of two *consistent* bags need **not** witness their
/// consistency — this function computes the algebraic join, nothing more.
pub fn bag_join(r: &Bag, s: &Bag) -> Result<Bag> {
    bag_join_with(r, s, &ExecConfig::sequential())
}

/// [`bag_join`] under an explicit execution configuration: the strategy
/// choice becomes sharding-aware ([`JoinStrategy::select_with`]) and the
/// merge path runs one sweep per key-range shard ([`crate::exec`]).
pub fn bag_join_with(r: &Bag, s: &Bag, cfg: &ExecConfig) -> Result<Bag> {
    let plan = JoinPlan::new(r.schema(), s.schema());
    let left = JoinSide::of_bag(r, &plan.left_key);
    let right = JoinSide::of_bag(s, &plan.right_key);
    match JoinStrategy::select_with(left, right, cfg) {
        JoinStrategy::SortMerge => bag_join_merge_planned(r, s, &plan, cfg),
        // The join is symmetric (output schema is the union, multiplicities
        // multiply), so build the key index on the smaller operand and
        // probe with the larger — which is also the side worth sharding
        // (the swapped orientation needs its own plan).
        JoinStrategy::Hash if r.support_size() < s.support_size() => {
            bag_join_hash_planned(s, r, &JoinPlan::new(s.schema(), r.schema()), cfg)
        }
        JoinStrategy::Hash => bag_join_hash_planned(r, s, &plan, cfg),
    }
}

/// The sort-merge bag join: both sides' live ids are key-sorted, then
/// equal-key runs multiply out group × group.
pub fn bag_join_merge(r: &Bag, s: &Bag) -> Result<Bag> {
    bag_join_merge_with(r, s, &ExecConfig::sequential())
}

/// [`bag_join_merge`] under an explicit execution configuration: when
/// `cfg` shards the input, the left side's key-sorted run splits at join
/// key-group boundaries (the right side's matching ranges are found by
/// binary search), each shard multiplies its groups out into a
/// [`ShardRun`], and the runs splice into the output arena in ascending
/// key order — exactly the sequential emission order.
pub fn bag_join_merge_with(r: &Bag, s: &Bag, cfg: &ExecConfig) -> Result<Bag> {
    let plan = JoinPlan::new(r.schema(), s.schema());
    bag_join_merge_planned(r, s, &plan, cfg)
}

/// Merge-join body shared by the dispatcher (which already built the
/// plan) and the public entry points.
fn bag_join_merge_planned(r: &Bag, s: &Bag, plan: &JoinPlan, cfg: &ExecConfig) -> Result<Bag> {
    bag_join_merge_impl(r, s, plan, cfg, true)
}

#[doc(hidden)]
pub fn bag_join_merge_baseline_with(r: &Bag, s: &Bag, cfg: &ExecConfig) -> Result<Bag> {
    // Pre-packing behavior (slice compares, linear advancement): the
    // reference the E16 bench and CI speedup gate measure against, and
    // the oracle the equivalence property tests compare to.
    let plan = JoinPlan::new(r.schema(), s.schema());
    bag_join_merge_impl(r, s, &plan, cfg, false)
}

fn bag_join_merge_impl(
    r: &Bag,
    s: &Bag,
    plan: &JoinPlan,
    cfg: &ExecConfig,
    hot: bool,
) -> Result<Bag> {
    let (left, right) = build_keyed_pair(
        SideInput {
            store: r.store(),
            ids: r.live_ids().collect(),
            key: &plan.left_key,
            sealed: r.is_sealed(),
        },
        SideInput {
            store: s.store(),
            ids: s.live_ids().collect(),
            key: &plan.right_key,
            sealed: s.is_sealed(),
        },
        hot,
    );

    let shards = cfg.shards_for(left.ids.len().min(right.ids.len()));
    if shards <= 1 {
        let mut out = Bag::with_capacity(plan.out.clone(), left.ids.len().max(right.ids.len()));
        let mut scratch: Vec<Value> = Vec::with_capacity(plan.out.arity());
        merge_range(
            r,
            s,
            plan,
            &left,
            &right,
            0..left.ids.len(),
            0..right.ids.len(),
            &mut scratch,
            |row, m| out.push_unique_row(row, m),
        )?;
        return Ok(out);
    }

    // Shard the left side at key-group boundaries; align each right-side
    // range to the shard's first key (and the next shard's first key) by
    // binary search, so every matching pair lands in exactly one shard.
    let tasks = crate::exec::aligned_shard_tasks(
        left.ids.len(),
        right.ids.len(),
        shards,
        |p| left.same_key(p - 1, p),
        |p| right.lower_bound_at(&left, p),
    );
    let runs = crate::exec::try_run_tasks(cfg, tasks, |(lr, rr)| {
        crate::fault::fire("join::merge::shard");
        // Initial guess mirroring the sequential pre-sizing: at least one
        // output row per larger-side input row is the common case.
        let mut run = ShardRun::with_capacity(plan.out.arity(), lr.len().max(rr.len()));
        let mut scratch: Vec<Value> = Vec::with_capacity(plan.out.arity());
        merge_range(r, s, plan, &left, &right, lr, rr, &mut scratch, |row, m| {
            run.push(row, m)
        })?;
        Ok(run)
    })?;
    let runs: Result<Vec<ShardRun>> = runs.into_iter().collect();
    Ok(Bag::from_shard_runs(
        plan.out.clone(),
        ShardedRowStore::from_runs(plan.out.arity(), runs?),
        false,
    ))
}

/// The group-by-group multiply-out of the merge join over one aligned
/// pair of key ranges, emitting `(combined row, multiplicity)`.
///
/// Key compares go through [`KeyedSide::cmp_at`] (single integer
/// compares when the pair is packed). On skewed ranges (length ratio ≥
/// [`crate::exec::GALLOP_RATIO`]) the non-matching advancement gallops:
/// the Less/Greater arms bulk-skip to the next candidate position by
/// exponential search instead of stepping once. Nothing is emitted
/// during advancement, so the output is bit-identical to the linear
/// sweep.
#[allow(clippy::too_many_arguments)] // internal: bundling would just rename the args
fn merge_range(
    r: &Bag,
    s: &Bag,
    plan: &JoinPlan,
    left: &KeyedSide,
    right: &KeyedSide,
    l_range: std::ops::Range<usize>,
    r_range: std::ops::Range<usize>,
    scratch: &mut Vec<Value>,
    mut emit: impl FnMut(&[Value], u64),
) -> Result<()> {
    let gallop = left.hot
        && (l_range.len() >= crate::exec::GALLOP_RATIO * r_range.len().max(1)
            || r_range.len() >= crate::exec::GALLOP_RATIO * l_range.len().max(1));
    let (mut i, mut j) = (l_range.start, r_range.start);
    while i < l_range.end && j < r_range.end {
        match left.cmp_at(right, i, j) {
            Ordering::Less => {
                i = if gallop {
                    crate::exec::gallop_bound(i, l_range.end, |p| {
                        left.cmp_at(right, p, j) == Ordering::Less
                    })
                } else {
                    i + 1
                };
            }
            Ordering::Greater => {
                j = if gallop {
                    crate::exec::gallop_bound(j, r_range.end, |p| {
                        left.cmp_at(right, i, p) == Ordering::Greater
                    })
                } else {
                    j + 1
                };
            }
            Ordering::Equal => {
                let i_end = left.run_end(i).min(l_range.end);
                let j_end = right.run_end(j).min(r_range.end);
                for &a in &left.ids[i..i_end] {
                    let arow = r.store().row(crate::store::RowId(a));
                    let am = r.mult_of(a);
                    for &b in &right.ids[j..j_end] {
                        let brow = s.store().row(crate::store::RowId(b));
                        let m = am
                            .checked_mul(s.mult_of(b))
                            .ok_or(CoreError::MultiplicityOverflow)?;
                        plan.combine_into(arow, brow, scratch);
                        // Distinct (a, b) pairs assemble distinct XY rows.
                        emit(scratch, m);
                    }
                }
                i = i_end;
                j = j_end;
            }
        }
    }
    Ok(())
}

/// Flat chained index over the right side's key projections: keys are
/// interned into a scratch arena; chains live in two plain vectors.
struct KeyIndex {
    keys: RowStore,
    /// Per key id: head of its chain into `next` (`u32::MAX` = empty).
    head: Vec<u32>,
    /// Per indexed position: next position with the same key.
    next: Vec<u32>,
    /// Indexed row ids, position-aligned with `next`.
    rows: Vec<u32>,
}

const NONE: u32 = u32::MAX;

impl KeyIndex {
    fn build(
        store: &RowStore,
        ids: impl Iterator<Item = u32>,
        key: &[usize],
        scratch: &mut Vec<Value>,
    ) -> Self {
        let mut idx = KeyIndex {
            keys: RowStore::new(key.len()),
            head: Vec::new(),
            next: Vec::new(),
            rows: Vec::new(),
        };
        for id in ids {
            let row = store.row(crate::store::RowId(id));
            scratch.clear();
            scratch.extend(key.iter().map(|&i| row[i]));
            let (kid, fresh) = idx.keys.intern(scratch);
            if fresh {
                idx.head.push(NONE);
            }
            let pos = idx.rows.len() as u32;
            idx.next.push(idx.head[kid.index()]);
            idx.rows.push(id);
            idx.head[kid.index()] = pos;
        }
        idx
    }

    /// Iterates row ids matching `row`'s key projection.
    fn probe<'a>(
        &'a self,
        row: &[Value],
        key: &[usize],
        scratch: &mut Vec<Value>,
    ) -> ProbeIter<'a> {
        scratch.clear();
        scratch.extend(key.iter().map(|&i| row[i]));
        let pos = match self.keys.lookup(scratch) {
            Some(kid) => self.head[kid.index()],
            None => NONE,
        };
        ProbeIter { index: self, pos }
    }
}

/// Iterator over one key chain of a [`KeyIndex`].
struct ProbeIter<'a> {
    index: &'a KeyIndex,
    pos: u32,
}

impl Iterator for ProbeIter<'_> {
    type Item = u32;

    #[inline]
    fn next(&mut self) -> Option<u32> {
        if self.pos == NONE {
            return None;
        }
        let p = self.pos as usize;
        self.pos = self.index.next[p];
        Some(self.index.rows[p])
    }
}

/// The hash bag join: right side's keys interned into a flat chained
/// index, left side probes. The small-side fallback of the heuristic.
pub fn bag_join_hash(r: &Bag, s: &Bag) -> Result<Bag> {
    bag_join_hash_with(r, s, &ExecConfig::sequential())
}

/// [`bag_join_hash`] under an explicit execution configuration: the key
/// index builds once on the calling thread and is **broadcast** (shared
/// read-only) to the workers, while the probe side's live ids shard
/// into plain index ranges — probes are row-independent, so no
/// key-group constraint applies. Each shard emits its matches into a
/// [`ShardRun`] (hashing output rows on the worker) and the runs splice
/// back in range order, reproducing the sequential emission order
/// exactly.
pub fn bag_join_hash_with(r: &Bag, s: &Bag, cfg: &ExecConfig) -> Result<Bag> {
    bag_join_hash_planned(r, s, &JoinPlan::new(r.schema(), s.schema()), cfg)
}

/// Hash-join body shared by the dispatcher (which already built the
/// plan) and the public entry points. `plan` must be oriented as
/// `JoinPlan::new(r.schema(), s.schema())`.
fn bag_join_hash_planned(r: &Bag, s: &Bag, plan: &JoinPlan, cfg: &ExecConfig) -> Result<Bag> {
    let mut key_scratch: Vec<Value> = Vec::with_capacity(plan.common.arity());
    let index = KeyIndex::build(s.store(), s.live_ids(), &plan.right_key, &mut key_scratch);

    let shards = cfg.shards_for(r.support_size());
    if shards <= 1 {
        let mut out = Bag::with_capacity(plan.out.clone(), r.support_size());
        let mut scratch: Vec<Value> = Vec::with_capacity(plan.out.arity());
        for a in r.live_ids() {
            let lrow = r.store().row(crate::store::RowId(a));
            let lm = r.mult_of(a);
            for b in index.probe(lrow, &plan.left_key, &mut key_scratch) {
                let rrow = s.store().row(crate::store::RowId(b));
                let m = lm
                    .checked_mul(s.mult_of(b))
                    .ok_or(CoreError::MultiplicityOverflow)?;
                plan.combine_into(lrow, rrow, &mut scratch);
                out.push_unique_row(&scratch, m);
            }
        }
        return Ok(out);
    }

    // Sharded probe: contiguous ranges of the live-id list keep the
    // concatenated emission order equal to the sequential loop above;
    // the oversubscribed plan + work stealing absorb skewed chains
    // (probe rows whose key matches a giant build-side group).
    let probe_ids: Vec<u32> = r.live_ids().collect();
    let ranges = crate::exec::shard_ranges(probe_ids.len(), shards, |_| false);
    let (probe_ids, index) = (&probe_ids, &index);
    let runs = crate::exec::try_run_tasks(cfg, ranges, |range| {
        crate::fault::fire("join::hash::shard");
        let mut run = ShardRun::with_capacity(plan.out.arity(), range.len());
        let mut key_scratch: Vec<Value> = Vec::with_capacity(plan.common.arity());
        let mut scratch: Vec<Value> = Vec::with_capacity(plan.out.arity());
        for &a in &probe_ids[range] {
            let lrow = r.store().row(crate::store::RowId(a));
            let lm = r.mult_of(a);
            for b in index.probe(lrow, &plan.left_key, &mut key_scratch) {
                let rrow = s.store().row(crate::store::RowId(b));
                let m = lm
                    .checked_mul(s.mult_of(b))
                    .ok_or(CoreError::MultiplicityOverflow)?;
                plan.combine_into(lrow, rrow, &mut scratch);
                // Distinct (a, b) pairs assemble distinct XY rows.
                run.push(&scratch, m);
            }
        }
        Ok(run)
    })?;
    let runs: Result<Vec<ShardRun>> = runs.into_iter().collect();
    Ok(Bag::from_shard_runs(
        plan.out.clone(),
        ShardedRowStore::from_runs(plan.out.arity(), runs?),
        false,
    ))
}

/// The relational join `R ⋈ S` of Section 2, strategy chosen by
/// [`JoinStrategy::select`].
pub fn relation_join(r: &Relation, s: &Relation) -> Relation {
    let plan = JoinPlan::new(r.schema(), s.schema());
    let left = JoinSide::of_relation(r, &plan.left_key);
    let right = JoinSide::of_relation(s, &plan.right_key);
    match JoinStrategy::select(left, right) {
        JoinStrategy::SortMerge => relation_join_merge_planned(r, s, &plan),
        // Symmetric join: index the smaller operand, probe with the
        // larger (the swapped orientation needs its own plan).
        JoinStrategy::Hash if r.len() < s.len() => relation_join_hash(s, r),
        JoinStrategy::Hash => relation_join_hash_planned(r, s, &plan),
    }
}

/// The sort-merge relational join.
pub fn relation_join_merge(r: &Relation, s: &Relation) -> Relation {
    relation_join_merge_planned(r, s, &JoinPlan::new(r.schema(), s.schema()))
}

/// Merge-join body shared by the dispatcher (which already built the
/// plan) and the public entry point.
fn relation_join_merge_planned(r: &Relation, s: &Relation, plan: &JoinPlan) -> Relation {
    let (left, right) = build_keyed_pair(
        SideInput {
            store: r.store(),
            ids: (0..r.len() as u32).collect(),
            key: &plan.left_key,
            sealed: r.is_sealed(),
        },
        SideInput {
            store: s.store(),
            ids: (0..s.len() as u32).collect(),
            key: &plan.right_key,
            sealed: s.is_sealed(),
        },
        true,
    );

    let mut out = Relation::with_capacity(plan.out.clone(), left.ids.len().max(right.ids.len()));
    let mut scratch: Vec<Value> = Vec::with_capacity(plan.out.arity());
    // Same hot-loop shape as the bag-side `merge_range`: packed key
    // compares plus galloped advancement under skew, bit-identical to
    // the linear slice-compare sweep.
    let gallop = left.ids.len() >= crate::exec::GALLOP_RATIO * right.ids.len().max(1)
        || right.ids.len() >= crate::exec::GALLOP_RATIO * left.ids.len().max(1);
    let (mut i, mut j) = (0, 0);
    while i < left.ids.len() && j < right.ids.len() {
        match left.cmp_at(&right, i, j) {
            Ordering::Less => {
                i = if gallop {
                    crate::exec::gallop_bound(i, left.ids.len(), |p| {
                        left.cmp_at(&right, p, j) == Ordering::Less
                    })
                } else {
                    i + 1
                };
            }
            Ordering::Greater => {
                j = if gallop {
                    crate::exec::gallop_bound(j, right.ids.len(), |p| {
                        left.cmp_at(&right, i, p) == Ordering::Greater
                    })
                } else {
                    j + 1
                };
            }
            Ordering::Equal => {
                let i_end = left.run_end(i);
                let j_end = right.run_end(j);
                for &a in &left.ids[i..i_end] {
                    let arow = r.store().row(crate::store::RowId(a));
                    for &b in &right.ids[j..j_end] {
                        let brow = s.store().row(crate::store::RowId(b));
                        plan.combine_into(arow, brow, &mut scratch);
                        out.push_unique_row(&scratch);
                    }
                }
                i = i_end;
                j = j_end;
            }
        }
    }
    out
}

/// The hash relational join.
pub fn relation_join_hash(r: &Relation, s: &Relation) -> Relation {
    relation_join_hash_planned(r, s, &JoinPlan::new(r.schema(), s.schema()))
}

/// Hash-join body shared by the dispatcher (which already built the
/// plan) and the public entry point. `plan` must be oriented as
/// `JoinPlan::new(r.schema(), s.schema())`.
fn relation_join_hash_planned(r: &Relation, s: &Relation, plan: &JoinPlan) -> Relation {
    let mut key_scratch: Vec<Value> = Vec::with_capacity(plan.common.arity());
    let index = KeyIndex::build(
        s.store(),
        0..s.len() as u32,
        &plan.right_key,
        &mut key_scratch,
    );
    let mut out = Relation::with_capacity(plan.out.clone(), r.len());
    let mut scratch: Vec<Value> = Vec::with_capacity(plan.out.arity());
    for a in 0..r.len() as u32 {
        let lrow = r.store().row(crate::store::RowId(a));
        for b in index.probe(lrow, &plan.left_key, &mut key_scratch) {
            let rrow = s.store().row(crate::store::RowId(b));
            plan.combine_into(lrow, rrow, &mut scratch);
            out.push_unique_row(&scratch);
        }
    }
    out
}

/// Sort-merge driver for callers that pair off two row lists on a shared
/// key without materializing the join (the flow-network builders key
/// their middle edges this way).
///
/// Sorts positions of `left` and `right` by their projections onto the
/// common key (`left_key`/`right_key` are each side's column indices for
/// the same key schema, in the same order) and invokes `on_pair(i, j)`
/// for every `(i, j)` whose rows agree on the key. Pairs arrive grouped
/// by ascending key, with `i` and then `j` ascending within a group —
/// deterministic regardless of input order.
pub fn merge_matching_pairs(
    left: &[(&[Value], u64)],
    left_key: &[usize],
    right: &[(&[Value], u64)],
    right_key: &[usize],
    on_pair: impl FnMut(usize, usize),
) {
    let keyed = KeyedPairs::sort(left, left_key, right, right_key);
    keyed
        .sweep(0..keyed.l_order.len(), 0..keyed.r_order.len())
        .for_each(on_pair);
}

/// Sharded [`merge_matching_pairs`]: the matched key space partitions
/// into contiguous key-range shards (no join group straddles a shard),
/// `shard` runs once per shard — in parallel per `cfg` — and its outputs
/// return in ascending key order. The flow-network builder assembles its
/// per-shard edge buffers through this.
///
/// Each shard receives a [`PairSweep`] that replays that shard's pairs
/// with the same ordering guarantees as [`merge_matching_pairs`]; the
/// concatenation of all shards' pair sequences is exactly the sequential
/// sequence.
pub fn merge_matching_pairs_sharded<T: Send>(
    left: &[(&[Value], u64)],
    left_key: &[usize],
    right: &[(&[Value], u64)],
    right_key: &[usize],
    cfg: &ExecConfig,
    shard: impl Fn(PairSweep<'_, '_>) -> T + Sync,
) -> Vec<T> {
    // Ungoverned entry point: strips the deadline so the only failure
    // mode is a worker panic, re-raised with its task index. Governed
    // callers use [`try_merge_matching_pairs_sharded`].
    let ungoverned = cfg.clone().with_deadline(crate::Deadline::NONE);
    match try_merge_matching_pairs_sharded(left, left_key, right, right_key, &ungoverned, shard) {
        Ok(out) => out,
        Err(e) => panic!("{e}"),
    }
}

/// [`merge_matching_pairs_sharded`] under governance: polls `cfg`'s
/// [`crate::Deadline`] at shard-chunk boundaries and contains worker
/// panics, returning [`CoreError::Aborted`] / [`CoreError::WorkerPanicked`]
/// instead of hanging or unwinding. Nothing is assembled on the error
/// path — per-shard outputs are dropped.
pub fn try_merge_matching_pairs_sharded<T: Send>(
    left: &[(&[Value], u64)],
    left_key: &[usize],
    right: &[(&[Value], u64)],
    right_key: &[usize],
    cfg: &ExecConfig,
    shard: impl Fn(PairSweep<'_, '_>) -> T + Sync,
) -> Result<Vec<T>> {
    let keyed = KeyedPairs::sort(left, left_key, right, right_key);
    let n = keyed.l_order.len();
    let shards = cfg.shards_for(n.min(keyed.r_order.len()));
    // Shard at left key-group boundaries and align right-side ranges to
    // the boundary keys by binary search — the same plan as the merge
    // join's, expressed over the sorted position permutations.
    let tasks = crate::exec::aligned_shard_tasks(
        n,
        keyed.r_order.len(),
        shards,
        |p| {
            let a = left[keyed.l_order[p - 1] as usize].0;
            let b = left[keyed.l_order[p] as usize].0;
            cmp_keys(a, left_key, b, left_key) == Ordering::Equal
        },
        |p| keyed.right_lower_bound(left[keyed.l_order[p] as usize].0),
    );
    let keyed = &keyed;
    crate::exec::try_run_tasks(cfg, tasks, |(lr, rr)| shard(keyed.sweep(lr, rr)))
}

/// Both sides of [`merge_matching_pairs`] with their key-sorted position
/// permutations.
struct KeyedPairs<'a, 'k> {
    left: &'a [(&'a [Value], u64)],
    left_key: &'k [usize],
    right: &'a [(&'a [Value], u64)],
    right_key: &'k [usize],
    l_order: Vec<u32>,
    r_order: Vec<u32>,
}

impl<'a, 'k> KeyedPairs<'a, 'k> {
    fn sort(
        left: &'a [(&'a [Value], u64)],
        left_key: &'k [usize],
        right: &'a [(&'a [Value], u64)],
        right_key: &'k [usize],
    ) -> Self {
        let proj_cmp = |rows: &[(&[Value], u64)], a: u32, b: u32, idx: &[usize]| {
            cmp_keys(rows[a as usize].0, idx, rows[b as usize].0, idx).then_with(|| a.cmp(&b))
        };
        let mut l_order: Vec<u32> = (0..left.len() as u32).collect();
        l_order.sort_unstable_by(|&a, &b| proj_cmp(left, a, b, left_key));
        let mut r_order: Vec<u32> = (0..right.len() as u32).collect();
        r_order.sort_unstable_by(|&a, &b| proj_cmp(right, a, b, right_key));
        KeyedPairs {
            left,
            left_key,
            right,
            right_key,
            l_order,
            r_order,
        }
    }

    /// First sorted right position whose key is `>=` the key of `lrow`.
    fn right_lower_bound(&self, lrow: &[Value]) -> usize {
        crate::exec::lower_bound_by(self.r_order.len(), |p| {
            let rrow = self.right[self.r_order[p] as usize].0;
            cmp_keys(rrow, self.right_key, lrow, self.left_key) == Ordering::Less
        })
    }

    /// A replayable sweep over one aligned pair of sorted-position ranges.
    fn sweep(
        &self,
        l_range: std::ops::Range<usize>,
        r_range: std::ops::Range<usize>,
    ) -> PairSweep<'_, '_> {
        PairSweep {
            keyed: self,
            l_range,
            r_range,
        }
    }
}

/// One shard of the matched key space: replays its `(i, j)` pairs in the
/// deterministic order documented on [`merge_matching_pairs`].
pub struct PairSweep<'a, 'k> {
    keyed: &'a KeyedPairs<'a, 'k>,
    l_range: std::ops::Range<usize>,
    r_range: std::ops::Range<usize>,
}

impl PairSweep<'_, '_> {
    /// Invokes `on_pair(i, j)` for every matching pair in this shard,
    /// grouped by ascending key, `i` then `j` ascending within a group.
    pub fn for_each(&self, mut on_pair: impl FnMut(usize, usize)) {
        let k = self.keyed;
        let group_end = |rows: &[(&[Value], u64)], order: &[u32], idx: &[usize], start: usize| {
            let head = rows[order[start] as usize].0;
            let mut end = start + 1;
            while end < order.len()
                && cmp_keys(head, idx, rows[order[end] as usize].0, idx) == Ordering::Equal
            {
                end += 1;
            }
            end
        };
        let (mut i, mut j) = (self.l_range.start, self.r_range.start);
        while i < self.l_range.end && j < self.r_range.end {
            let lrow = k.left[k.l_order[i] as usize].0;
            let rrow = k.right[k.r_order[j] as usize].0;
            match cmp_keys(lrow, k.left_key, rrow, k.right_key) {
                Ordering::Less => i += 1,
                Ordering::Greater => j += 1,
                Ordering::Equal => {
                    let i_end = group_end(k.left, &k.l_order, k.left_key, i).min(self.l_range.end);
                    let j_end =
                        group_end(k.right, &k.r_order, k.right_key, j).min(self.r_range.end);
                    for &a in &k.l_order[i..i_end] {
                        for &b in &k.r_order[j..j_end] {
                            on_pair(a as usize, b as usize);
                        }
                    }
                    i = i_end;
                    j = j_end;
                }
            }
        }
    }
}

/// The multiway relational join `R₁ ⋈ ⋯ ⋈ R_m` (left fold).
///
/// The empty join is the unit relation (empty tuple over `∅`). This is
/// `J = R'₁ ⋈ ⋯ ⋈ R'_m`, the candidate-witness support of Lemma 1 and the
/// variable set of the linear program `P(R₁,…,R_m)` of Section 5.2 —
/// beware that its size can grow exponentially in `m`.
pub fn multi_relation_join(rels: &[&Relation]) -> Relation {
    let mut acc = Relation::unit();
    for r in rels {
        acc = relation_join(&acc, r);
    }
    acc
}

/// The multiway bag join `R₁ ⋈ᵇ ⋯ ⋈ᵇ R_m` (left fold; empty = unit bag).
pub fn multi_bag_join(bags: &[&Bag]) -> Result<Bag> {
    let mut acc = Relation::unit().to_bag();
    for b in bags {
        acc = bag_join(&acc, b)?;
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Attr, Deadline};

    fn schema(ids: &[u32]) -> Schema {
        Schema::from_attrs(ids.iter().map(|&i| Attr::new(i)))
    }

    #[test]
    fn bag_join_multiplies_multiplicities() {
        // R(A,B) = {(1,2):2}, S(B,C) = {(2,5):3} -> R⋈ᵇS = {(1,2,5):6}
        let r = Bag::from_u64s(schema(&[0, 1]), [(&[1u64, 2][..], 2)]).unwrap();
        let s = Bag::from_u64s(schema(&[1, 2]), [(&[2u64, 5][..], 3)]).unwrap();
        let j = bag_join(&r, &s).unwrap();
        assert_eq!(j.schema(), &schema(&[0, 1, 2]));
        assert_eq!(j.multiplicity(&[Value(1), Value(2), Value(5)]), 6);
        assert_eq!(j.support_size(), 1);
    }

    #[test]
    fn bag_join_respects_common_attrs() {
        let r = Bag::from_u64s(schema(&[0, 1]), [(&[1u64, 2][..], 1), (&[1, 3][..], 1)]).unwrap();
        let s = Bag::from_u64s(schema(&[1, 2]), [(&[2u64, 9][..], 1)]).unwrap();
        let j = bag_join(&r, &s).unwrap();
        // only the (1,2) row of r matches B=2
        assert_eq!(j.support_size(), 1);
        assert_eq!(j.multiplicity(&[Value(1), Value(2), Value(9)]), 1);
    }

    #[test]
    fn join_with_disjoint_schemas_is_cartesian_product() {
        let r = Bag::from_u64s(schema(&[0]), [(&[1u64][..], 2), (&[2][..], 1)]).unwrap();
        let s = Bag::from_u64s(schema(&[1]), [(&[7u64][..], 3)]).unwrap();
        let j = bag_join(&r, &s).unwrap();
        assert_eq!(j.support_size(), 2);
        assert_eq!(j.multiplicity(&[Value(1), Value(7)]), 6);
        assert_eq!(j.multiplicity(&[Value(2), Value(7)]), 3);
    }

    #[test]
    fn merge_and_hash_paths_agree() {
        // Random-ish structured inputs exercising runs of equal keys.
        let mut r = Bag::new(schema(&[0, 1]));
        let mut s = Bag::new(schema(&[1, 2]));
        for i in 0..40u64 {
            r.insert(vec![Value(i % 7), Value(i % 5)], i % 3 + 1)
                .unwrap();
            s.insert(vec![Value(i % 5), Value(i % 11)], i % 4 + 1)
                .unwrap();
        }
        let merge = bag_join_merge(&r, &s).unwrap();
        let hash = bag_join_hash(&r, &s).unwrap();
        assert_eq!(merge, hash);
        // and for relations
        let rm = relation_join_merge(&r.support(), &s.support());
        let rh = relation_join_hash(&r.support(), &s.support());
        assert_eq!(rm, rh);
        assert_eq!(merge.support(), rm);
    }

    #[test]
    fn merge_path_on_sealed_prefix_operands() {
        // Right operand: key {A1} is a schema prefix of {A1,A2}, so a
        // sealed bag's run is reused without sorting.
        let r = Bag::from_u64s(
            schema(&[0, 1]),
            [(&[1u64, 1][..], 2), (&[2, 1][..], 3), (&[3, 2][..], 5)],
        )
        .unwrap();
        let s = Bag::from_u64s(
            schema(&[1, 2]),
            [(&[1u64, 4][..], 7), (&[1, 5][..], 11), (&[2, 6][..], 13)],
        )
        .unwrap();
        assert!(r.is_sealed() && s.is_sealed());
        let j = bag_join_merge(&r, &s).unwrap();
        assert_eq!(j.multiplicity(&[Value(1), Value(1), Value(4)]), 14);
        assert_eq!(j.multiplicity(&[Value(2), Value(1), Value(5)]), 33);
        assert_eq!(j.multiplicity(&[Value(3), Value(2), Value(6)]), 65);
        assert_eq!(j.support_size(), 5);
    }

    #[test]
    fn hash_dispatch_side_swap_is_observation_invariant() {
        // Asymmetric supports route through the swapped hash dispatch;
        // the join is symmetric, so both orders must agree everywhere.
        let mut small = Bag::new(schema(&[0, 1]));
        small.insert(vec![Value(1), Value(2)], 3).unwrap();
        let mut big = Bag::new(schema(&[1, 2]));
        for i in 0..200u64 {
            big.insert(vec![Value(i % 5), Value(i)], i + 1).unwrap();
        }
        let via_dispatch = bag_join(&small, &big).unwrap();
        let direct = bag_join_hash(&small, &big).unwrap();
        let swapped = bag_join_hash(&big, &small).unwrap();
        assert_eq!(via_dispatch, direct);
        assert_eq!(via_dispatch, swapped);
        assert_eq!(
            relation_join(&small.support(), &big.support()),
            relation_join_hash(&big.support(), &small.support())
        );
    }

    #[test]
    fn strategy_heuristic_thresholds() {
        let un = |n: usize| JoinSide::new(n, false);
        let so = |n: usize| JoinSide::new(n, true);
        // tiny side: always hash, whatever the sortedness
        assert_eq!(
            JoinStrategy::select(un(1), un(1_000_000)),
            JoinStrategy::Hash
        );
        assert_eq!(
            JoinStrategy::select(so(1_000_000), so(1)),
            JoinStrategy::Hash
        );
        assert_eq!(JoinStrategy::select(so(63), so(64)), JoinStrategy::Hash);
        // both sort-free: pure linear sweep, merge wins
        assert_eq!(
            JoinStrategy::select(so(64), so(64)),
            JoinStrategy::SortMerge
        );
        // lopsided sizes: build the small side, probe the large
        assert_eq!(JoinStrategy::select(so(64), un(512)), JoinStrategy::Hash);
        // comparable sizes but sorts required: hash (BENCH_e12, 4096:
        // 0.51 ms hash vs 0.61 ms merge)
        assert_eq!(JoinStrategy::select(un(4096), un(4096)), JoinStrategy::Hash);
        assert_eq!(JoinStrategy::select(so(4096), un(4096)), JoinStrategy::Hash);
        // ... but a sort-free side with a live packed view flips the
        // sequential case to merge (integer-compare sweep), on either
        // side; packed without sort-free does not
        let sop = |n: usize| JoinSide::new(n, true).with_packed(true);
        let unp = |n: usize| JoinSide::new(n, false).with_packed(true);
        assert_eq!(
            JoinStrategy::select(sop(4096), un(4096)),
            JoinStrategy::SortMerge
        );
        assert_eq!(
            JoinStrategy::select(un(4096), sop(4096)),
            JoinStrategy::SortMerge
        );
        assert_eq!(
            JoinStrategy::select(unp(4096), un(4096)),
            JoinStrategy::Hash
        );
        // the small-side and ratio rules still come first
        assert_eq!(JoinStrategy::select(sop(63), sop(63)), JoinStrategy::Hash);
        assert_eq!(JoinStrategy::select(sop(64), un(512)), JoinStrategy::Hash);
        // ... unless sharding spreads the sweep across threads
        let cfg = ExecConfig {
            threads: 4,
            min_parallel_support: 1024,
            deadline: Deadline::NONE,
        };
        assert_eq!(
            JoinStrategy::select_with(so(4096), un(4096), &cfg),
            JoinStrategy::SortMerge
        );
        // sharding claims nothing when the body would fall back
        assert_eq!(
            JoinStrategy::select_with(so(512), un(512), &cfg),
            JoinStrategy::Hash
        );
    }

    #[test]
    fn packed_merge_join_matches_slice_baseline() {
        // Multi-column keys with repeats and skewed sizes: exercises the
        // shared-spec packing, the tie-broken permutation sort, and the
        // galloped advancement — all of which must reproduce the
        // slice-compare linear baseline byte for byte.
        let mut r = Bag::new(schema(&[0, 1, 2, 3]));
        let mut s = Bag::new(schema(&[1, 2, 3, 4]));
        for i in 0..800u64 {
            r.insert(
                vec![Value(i), Value(i % 7), Value(i % 5), Value(i % 3)],
                i % 9 + 1,
            )
            .unwrap();
        }
        for i in 0..60u64 {
            s.insert(
                vec![Value(i % 7), Value(i % 5), Value(i % 3), Value(i + 1000)],
                i % 4 + 1,
            )
            .unwrap();
        }
        for sealed in [false, true] {
            if sealed {
                r.seal();
                s.seal();
            }
            for threads in [1usize, 2, 4] {
                let cfg = ExecConfig {
                    threads,
                    min_parallel_support: 1,
                    deadline: Deadline::NONE,
                };
                let base = bag_join_merge_baseline_with(&r, &s, &cfg).unwrap();
                let hot = bag_join_merge_with(&r, &s, &cfg).unwrap();
                assert_eq!(hot, base, "sealed = {sealed}, threads = {threads}");
                let base_rows: Vec<&[Value]> = base.iter().map(|(row, _)| row).collect();
                let hot_rows: Vec<&[Value]> = hot.iter().map(|(row, _)| row).collect();
                assert_eq!(
                    hot_rows, base_rows,
                    "sealed = {sealed}, threads = {threads}"
                );
            }
        }
    }

    #[test]
    fn packed_pair_skips_oversized_keys() {
        // Key values near u64::MAX blow the 64-bit shared-word budget on
        // a 2-column key; the pair must fall back to slice compares and
        // still agree with the baseline.
        let mut r = Bag::new(schema(&[0, 1, 2]));
        let mut s = Bag::new(schema(&[1, 2, 3]));
        for i in 0..200u64 {
            r.insert(
                vec![
                    Value(i),
                    Value(u64::MAX - i % 11),
                    Value(u64::MAX / 2 + i % 5),
                ],
                2,
            )
            .unwrap();
            s.insert(
                vec![
                    Value(u64::MAX - i % 11),
                    Value(u64::MAX / 2 + i % 5),
                    Value(i),
                ],
                3,
            )
            .unwrap();
        }
        r.seal();
        s.seal();
        let cfg = ExecConfig::sequential();
        let base = bag_join_merge_baseline_with(&r, &s, &cfg).unwrap();
        let hot = bag_join_merge_with(&r, &s, &cfg).unwrap();
        assert_eq!(hot, base);
    }

    #[test]
    fn parallel_merge_join_matches_sequential() {
        let mut r = Bag::new(schema(&[0, 1]));
        let mut s = Bag::new(schema(&[1, 2]));
        for i in 0..200u64 {
            r.insert(vec![Value(i % 17), Value(i % 5)], i % 3 + 1)
                .unwrap();
            s.insert(vec![Value(i % 5), Value(i % 13)], i % 4 + 1)
                .unwrap();
        }
        r.seal();
        s.seal();
        let seq = bag_join_merge(&r, &s).unwrap();
        for threads in [2usize, 3, 4, 8] {
            let cfg = ExecConfig {
                threads,
                min_parallel_support: 1,
                deadline: Deadline::NONE,
            };
            let par = bag_join_merge_with(&r, &s, &cfg).unwrap();
            assert_eq!(par, seq, "threads = {threads}");
            // the splice preserves the sequential emission order exactly
            let seq_rows: Vec<&[Value]> = seq.iter().map(|(row, _)| row).collect();
            let par_rows: Vec<&[Value]> = par.iter().map(|(row, _)| row).collect();
            assert_eq!(par_rows, seq_rows);
        }
    }

    #[test]
    fn parallel_hash_probe_matches_sequential() {
        // Build side small, probe side large and skewed: one giant key
        // chain (key 0) plus many short ones — the shape work stealing
        // is for. The probe side is deliberately left unsealed.
        let mut r = Bag::new(schema(&[0, 1]));
        let mut s = Bag::new(schema(&[1, 2]));
        for i in (0..600u64).rev() {
            let key = if i % 3 == 0 { 0 } else { i % 40 };
            r.insert(vec![Value(i), Value(key)], i % 7 + 1).unwrap();
        }
        for i in 0..40u64 {
            s.insert(vec![Value(i), Value(i + 100)], i % 5 + 1).unwrap();
        }
        let seq = bag_join_hash(&r, &s).unwrap();
        for threads in [2usize, 4, 8] {
            let cfg = ExecConfig {
                threads,
                min_parallel_support: 1,
                deadline: Deadline::NONE,
            };
            let par = bag_join_hash_with(&r, &s, &cfg).unwrap();
            assert_eq!(par, seq, "threads = {threads}");
            // splice preserves the sequential emission order exactly
            let seq_rows: Vec<&[Value]> = seq.iter().map(|(row, _)| row).collect();
            let par_rows: Vec<&[Value]> = par.iter().map(|(row, _)| row).collect();
            assert_eq!(par_rows, seq_rows, "emission order, threads = {threads}");
        }
        // the dispatcher with a sharding config agrees too (it may pick
        // either physical strategy)
        let via_dispatch = bag_join_with(
            &r,
            &s,
            &ExecConfig {
                threads: 4,
                min_parallel_support: 1,
                deadline: Deadline::NONE,
            },
        )
        .unwrap();
        assert_eq!(via_dispatch, seq);
    }

    #[test]
    fn parallel_hash_probe_detects_overflow() {
        let mut r = Bag::new(schema(&[0, 1]));
        let mut s = Bag::new(schema(&[1, 2]));
        for i in 0..100u64 {
            r.insert(vec![Value(i), Value(i % 3)], u64::MAX).unwrap();
            s.insert(vec![Value(i % 3), Value(i)], 2).unwrap();
        }
        for threads in [1usize, 4] {
            let cfg = ExecConfig {
                threads,
                min_parallel_support: 1,
                deadline: Deadline::NONE,
            };
            assert_eq!(
                bag_join_hash_with(&r, &s, &cfg),
                Err(CoreError::MultiplicityOverflow),
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn sharded_matching_pairs_concatenate_to_sequential() {
        let l_rows: Vec<Vec<Value>> = (0..40u64).map(|i| vec![Value(i % 7), Value(i)]).collect();
        let r_rows: Vec<Vec<Value>> = (0..30u64)
            .map(|i| vec![Value(i % 7), Value(i + 100)])
            .collect();
        let left: Vec<(&[Value], u64)> = l_rows.iter().map(|r| (&r[..], 1)).collect();
        let right: Vec<(&[Value], u64)> = r_rows.iter().map(|r| (&r[..], 1)).collect();
        let mut seq = Vec::new();
        merge_matching_pairs(&left, &[0], &right, &[0], |i, j| seq.push((i, j)));
        for threads in [1usize, 2, 4] {
            let cfg = ExecConfig {
                threads,
                min_parallel_support: 1,
                deadline: Deadline::NONE,
            };
            let per_shard: Vec<Vec<(usize, usize)>> =
                merge_matching_pairs_sharded(&left, &[0], &right, &[0], &cfg, |sweep| {
                    let mut pairs = Vec::new();
                    sweep.for_each(|i, j| pairs.push((i, j)));
                    pairs
                });
            let flat: Vec<(usize, usize)> = per_shard.into_iter().flatten().collect();
            assert_eq!(flat, seq, "threads = {threads}");
        }
    }

    #[test]
    fn join_support_law() {
        // (R ⋈ᵇ S)' = R' ⋈ S'
        let r = Bag::from_u64s(
            schema(&[0, 1]),
            [(&[1u64, 2][..], 2), (&[2, 2][..], 5), (&[3, 4][..], 1)],
        )
        .unwrap();
        let s = Bag::from_u64s(
            schema(&[1, 2]),
            [(&[2u64, 1][..], 7), (&[2, 2][..], 1), (&[9, 9][..], 3)],
        )
        .unwrap();
        let lhs = bag_join(&r, &s).unwrap().support();
        let rhs = relation_join(&r.support(), &s.support());
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn relation_join_identity_with_unit() {
        let r = Relation::from_u64s(schema(&[0, 1]), [&[1u64, 2][..]]).unwrap();
        let j = relation_join(&Relation::unit(), &r);
        assert_eq!(j, r);
        let j2 = relation_join(&r, &Relation::unit());
        assert_eq!(j2, r);
    }

    #[test]
    fn self_join_on_same_schema_is_intersection() {
        let r = Relation::from_u64s(schema(&[0]), [&[1u64][..], &[2][..]]).unwrap();
        let s = Relation::from_u64s(schema(&[0]), [&[2u64][..], &[3][..]]).unwrap();
        let j = relation_join(&r, &s);
        assert_eq!(j.len(), 1);
        assert!(j.contains(&[Value(2)]));
    }

    #[test]
    fn multi_join_triangle() {
        // R(AB)={00,11}, S(BC)={01,10}, T(AC)={00,11}: pairwise consistent
        // relations whose 3-way join is empty (Section 4 example).
        let r = Relation::from_u64s(schema(&[0, 1]), [&[0u64, 0][..], &[1, 1][..]]).unwrap();
        let s = Relation::from_u64s(schema(&[1, 2]), [&[0u64, 1][..], &[1, 0][..]]).unwrap();
        let t = Relation::from_u64s(schema(&[0, 2]), [&[0u64, 0][..], &[1, 1][..]]).unwrap();
        let j = multi_relation_join(&[&r, &s, &t]);
        assert!(j.is_empty());
        // but R ⋈ S alone is not empty
        let rs = relation_join(&r, &s);
        assert_eq!(rs.len(), 2);
    }

    #[test]
    fn multi_bag_join_associates_with_pairwise() {
        let r = Bag::from_u64s(schema(&[0, 1]), [(&[1u64, 1][..], 2)]).unwrap();
        let s = Bag::from_u64s(schema(&[1, 2]), [(&[1u64, 1][..], 3)]).unwrap();
        let t = Bag::from_u64s(schema(&[2, 3]), [(&[1u64, 1][..], 5)]).unwrap();
        let j1 = multi_bag_join(&[&r, &s, &t]).unwrap();
        let j2 = bag_join(&bag_join(&r, &s).unwrap(), &t).unwrap();
        assert_eq!(j1, j2);
        assert_eq!(j1.multiplicity(&[Value(1); 4]), 30);
    }

    #[test]
    fn overflow_in_join_detected() {
        let r = Bag::from_u64s(schema(&[0]), [(&[1u64][..], u64::MAX)]).unwrap();
        let s = Bag::from_u64s(schema(&[1]), [(&[1u64][..], 2)]).unwrap();
        assert_eq!(bag_join(&r, &s), Err(CoreError::MultiplicityOverflow));
        assert_eq!(bag_join_merge(&r, &s), Err(CoreError::MultiplicityOverflow));
    }

    #[test]
    fn plan_exposes_schemas() {
        let plan = JoinPlan::new(&schema(&[0, 1]), &schema(&[1, 2]));
        assert_eq!(plan.output_schema(), &schema(&[0, 1, 2]));
        assert_eq!(plan.common_schema(), &schema(&[1]));
    }
}
