//! Plain-text serialization of bags and relations.
//!
//! The format mirrors the paper's tabular notation (Section 2):
//!
//! ```text
//! A B #
//! a1 b1 : 2
//! a2 b2 : 1
//! a3 b3 : 5
//! ```
//!
//! * The header names the attributes; `#` marks the multiplicity column.
//!   Attribute names of the form `A<digits>` map to [`Attr`] ids directly;
//!   any other name is interned in order of first appearance.
//! * Each data row lists one value per attribute and, after a `:`, the
//!   multiplicity. Omitting `: m` means multiplicity 1, so the same file
//!   format reads relations.
//! * Values must be unsigned integers (intern symbolic values upstream).
//! * Blank lines and `%`-comments are ignored.
//!
//! Round-tripping is exact; ordering is canonical (sorted rows) on write.

use crate::{Attr, AttrNames, Bag, CoreError, Relation, Schema, Value};
use std::fmt;

/// Parse errors with 1-based line numbers.
#[derive(Debug, PartialEq, Eq)]
pub enum ParseError {
    /// The input had no header line.
    MissingHeader,
    /// The header repeated an attribute name.
    DuplicateAttribute(String),
    /// A data row had the wrong number of values.
    WrongArity {
        /// 1-based line number.
        line: usize,
        /// Values expected (the header's attribute count).
        expected: usize,
        /// Values found.
        got: usize,
    },
    /// A value or multiplicity failed to parse as an unsigned integer.
    BadNumber {
        /// 1-based line number.
        line: usize,
        /// The offending token.
        token: String,
    },
    /// A relation was requested but some multiplicity exceeded 1.
    NotARelation,
    /// Accumulating a duplicate row's multiplicity exceeded `u64::MAX`.
    ///
    /// Carried separately from [`ParseError::Core`] so the failing line
    /// is reported — the accumulate happens per data row, and a silent
    /// wrap here would corrupt every downstream consistency answer.
    MultiplicityOverflow {
        /// 1-based line number of the row whose accumulate overflowed.
        line: usize,
    },
    /// A core-level failure (e.g. an arity mismatch against the header).
    Core(CoreError),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::MissingHeader => write!(f, "missing header line"),
            ParseError::DuplicateAttribute(a) => write!(f, "duplicate attribute {a:?}"),
            ParseError::WrongArity {
                line,
                expected,
                got,
            } => {
                write!(f, "line {line}: expected {expected} values, got {got}")
            }
            ParseError::BadNumber { line, token } => {
                write!(f, "line {line}: {token:?} is not an unsigned integer")
            }
            ParseError::NotARelation => {
                write!(
                    f,
                    "input has multiplicities > 1 but a relation was requested"
                )
            }
            ParseError::MultiplicityOverflow { line } => {
                write!(f, "line {line}: accumulated multiplicity exceeds u64::MAX")
            }
            ParseError::Core(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ParseError {}

impl From<CoreError> for ParseError {
    fn from(e: CoreError) -> Self {
        ParseError::Core(e)
    }
}

/// Interns attribute names to [`Attr`] ids **consistently across files**:
/// the same name always maps to the same attribute. Canonical names
/// `A<digits>` keep their numeric id; symbolic names are allocated from a
/// high id range (`2³⁰+`) so the two kinds never collide in practice.
#[derive(Default, Debug)]
pub struct NameInterner {
    by_name: crate::FxHashMap<String, Attr>,
    names: AttrNames,
    next_symbolic: u32,
}

impl NameInterner {
    /// Fresh interner.
    pub fn new() -> Self {
        NameInterner {
            by_name: Default::default(),
            names: AttrNames::new(),
            next_symbolic: 1 << 30,
        }
    }

    /// The attribute for `token`, allocating on first sight.
    pub fn attr(&mut self, token: &str) -> Attr {
        if let Some(&a) = self.by_name.get(token) {
            return a;
        }
        let attr = match token.strip_prefix('A').and_then(|d| d.parse::<u32>().ok()) {
            Some(id) => Attr::new(id),
            None => {
                let a = Attr::new(self.next_symbolic);
                self.next_symbolic += 1;
                a
            }
        };
        self.names.set(attr, token);
        self.by_name.insert(token.to_string(), attr);
        attr
    }

    /// The accumulated display names.
    pub fn names(&self) -> &AttrNames {
        &self.names
    }

    /// Every known `(attribute, name)` binding, sorted by attribute id —
    /// a deterministic serialization order for snapshot writers.
    pub fn entries(&self) -> Vec<(Attr, String)> {
        let mut out: Vec<(Attr, String)> = self
            .by_name
            .iter()
            .map(|(name, &attr)| (attr, name.clone()))
            .collect();
        out.sort_by_key(|(attr, _)| attr.id());
        out
    }

    /// Re-binds a persisted `(attribute, name)` pair (snapshot loading).
    /// The first binding of a name wins — a live session's names are
    /// never clobbered by a loaded file. Restoring a symbolic attribute
    /// advances the allocator past it so later fresh names cannot
    /// collide with restored ids.
    pub fn restore(&mut self, attr: Attr, name: &str) {
        if self.by_name.contains_key(name) {
            return;
        }
        self.names.set(attr, name);
        self.by_name.insert(name.to_string(), attr);
        if attr.id() >= 1 << 30 {
            self.next_symbolic = self.next_symbolic.max(attr.id() + 1);
        }
    }
}

/// Parses a bag from the tabular text format. Returns the bag plus the
/// attribute-name registry built from the header. For multi-file inputs
/// that must share attribute identities, use [`parse_bag_with`].
pub fn parse_bag(text: &str) -> Result<(Bag, AttrNames), ParseError> {
    let mut interner = NameInterner::new();
    let bag = parse_bag_with(text, &mut interner)?;
    Ok((bag, interner.names))
}

/// Parses a bag, resolving attribute names through a shared interner.
pub fn parse_bag_with(text: &str, interner: &mut NameInterner) -> Result<Bag, ParseError> {
    let mut lines = text
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.split('%').next().unwrap_or("").trim()))
        .filter(|(_, l)| !l.is_empty());

    let (_, header) = lines.next().ok_or(ParseError::MissingHeader)?;
    let mut attrs: Vec<Attr> = Vec::new();
    let mut seen: Vec<String> = Vec::new();
    for token in header.split_whitespace() {
        if token == "#" {
            break;
        }
        if seen.iter().any(|s| s == token) {
            return Err(ParseError::DuplicateAttribute(token.to_string()));
        }
        seen.push(token.to_string());
        attrs.push(interner.attr(token));
    }
    let schema = Schema::from_attrs(attrs.iter().copied());
    if schema.arity() != attrs.len() {
        // two distinct names mapped to the same id (e.g. "A1" twice caught
        // above, but "A1" and a fresh name colliding cannot happen since
        // fresh ids start above all seen ids — still guard)
        return Err(ParseError::DuplicateAttribute(header.to_string()));
    }
    // positions of header columns inside the sorted schema
    let positions: Vec<usize> = attrs
        .iter()
        .map(|a| schema.position(*a).expect("attr in schema"))
        .collect();

    let mut bag = Bag::new(schema.clone());
    for (line_no, line) in lines {
        let (vals_part, mult_part) = match line.split_once(':') {
            Some((v, m)) => (v, Some(m)),
            None => (line, None),
        };
        let tokens: Vec<&str> = vals_part.split_whitespace().collect();
        if tokens.len() != attrs.len() {
            return Err(ParseError::WrongArity {
                line: line_no,
                expected: attrs.len(),
                got: tokens.len(),
            });
        }
        let mut row = vec![Value(0); attrs.len()];
        for (col, token) in tokens.iter().enumerate() {
            let v: u64 = token.parse().map_err(|_| ParseError::BadNumber {
                line: line_no,
                token: token.to_string(),
            })?;
            row[positions[col]] = Value(v);
        }
        let mult: u64 = match mult_part {
            Some(m) => {
                let m = m.trim();
                m.parse().map_err(|_| ParseError::BadNumber {
                    line: line_no,
                    token: m.to_string(),
                })?
            }
            None => 1,
        };
        // Duplicate rows accumulate; surface an overflowing accumulate
        // with the line that tipped it over instead of a bare core error.
        match bag.insert(row, mult) {
            Ok(()) => {}
            Err(CoreError::MultiplicityOverflow) => {
                return Err(ParseError::MultiplicityOverflow { line: line_no })
            }
            Err(e) => return Err(ParseError::Core(e)),
        }
    }
    Ok(bag)
}

/// Parses one line of the `watch` delta format:
///
/// ```text
/// <bag-index> <v1> ... <vk> : <±delta>
/// ```
///
/// `bag-index` selects a bag of the stream (0-based, in load order);
/// the values are in the bag's schema order (the order [`write_bag`]
/// prints); the signed `delta` after the `:` bumps the row's
/// multiplicity (`: +1` / `: -2`; omitting `: delta` means `+1`).
/// Blank lines and `%`-comments yield `Ok(None)`.
pub fn parse_delta_line(
    line: &str,
    line_no: usize,
) -> Result<Option<(usize, Vec<Value>, i64)>, ParseError> {
    let line = line.split('%').next().unwrap_or("").trim();
    if line.is_empty() {
        return Ok(None);
    }
    let (vals_part, delta_part) = match line.split_once(':') {
        Some((v, d)) => (v, Some(d)),
        None => (line, None),
    };
    let mut tokens = vals_part.split_whitespace();
    let index_token = tokens.next().ok_or(ParseError::WrongArity {
        line: line_no,
        expected: 1,
        got: 0,
    })?;
    let index: usize = index_token.parse().map_err(|_| ParseError::BadNumber {
        line: line_no,
        token: index_token.to_string(),
    })?;
    let mut row = Vec::new();
    for token in tokens {
        let v: u64 = token.parse().map_err(|_| ParseError::BadNumber {
            line: line_no,
            token: token.to_string(),
        })?;
        row.push(Value(v));
    }
    let delta: i64 = match delta_part {
        Some(d) => {
            let d = d.trim();
            d.parse().map_err(|_| ParseError::BadNumber {
                line: line_no,
                token: d.to_string(),
            })?
        }
        None => 1,
    };
    Ok(Some((index, row, delta)))
}

/// Writes a bag in the tabular text format (canonical: sorted rows).
pub fn write_bag(bag: &Bag, names: &AttrNames) -> String {
    let mut out = String::new();
    for a in bag.schema().iter() {
        out.push_str(&names.name(a));
        out.push(' ');
    }
    out.push_str("#\n");
    for (row, m) in bag.iter_sorted() {
        let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
        out.push_str(&cells.join(" "));
        out.push_str(&format!(" : {m}\n"));
    }
    out
}

/// Parses a relation (multiplicities, if present, must be 1).
pub fn parse_relation(text: &str) -> Result<(Relation, AttrNames), ParseError> {
    let (bag, names) = parse_bag(text)?;
    if !bag.is_relation() {
        return Err(ParseError::NotARelation);
    }
    Ok((bag.support(), names))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_paper_example() {
        let text = "A B #\n1 10 : 2\n2 20 : 1\n3 30 : 5\n";
        let (bag, names) = parse_bag(text).unwrap();
        assert_eq!(bag.support_size(), 3);
        assert_eq!(bag.unary_size(), 8);
        assert_eq!(names.name(bag.schema().attrs()[0]), "A");
        assert_eq!(names.name(bag.schema().attrs()[1]), "B");
    }

    #[test]
    fn roundtrip_is_exact() {
        let text = "A0 A1 #\n1 2 : 7\n3 4 : 1\n";
        let (bag, names) = parse_bag(text).unwrap();
        let written = write_bag(&bag, &names);
        let (bag2, _) = parse_bag(&written).unwrap();
        assert_eq!(bag, bag2);
    }

    #[test]
    fn canonical_attr_names_keep_ids() {
        let text = "A5 A2 #\n1 2 : 1\n";
        let (bag, _) = parse_bag(text).unwrap();
        // header order A5 A2, but schema sorts: value 2 belongs to A2
        assert_eq!(bag.schema().attrs(), &[Attr::new(2), Attr::new(5)]);
        assert_eq!(bag.multiplicity(&[Value(2), Value(1)]), 1);
    }

    #[test]
    fn default_multiplicity_is_one_and_accumulates() {
        let text = "X #\n1\n1\n2 : 3\n";
        let (bag, _) = parse_bag(text).unwrap();
        assert_eq!(bag.multiplicity(&[Value(1)]), 2);
        assert_eq!(bag.multiplicity(&[Value(2)]), 3);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "% a bag\n\nA #\n% data follows\n1 : 4\n\n";
        let (bag, _) = parse_bag(text).unwrap();
        assert_eq!(bag.multiplicity(&[Value(1)]), 4);
    }

    #[test]
    fn errors_carry_line_numbers() {
        assert_eq!(parse_bag(""), Err(ParseError::MissingHeader));
        let wrong = parse_bag("A B #\n1 : 1\n");
        assert_eq!(
            wrong,
            Err(ParseError::WrongArity {
                line: 2,
                expected: 2,
                got: 1
            })
        );
        let bad = parse_bag("A #\nx : 1\n");
        assert!(matches!(bad, Err(ParseError::BadNumber { line: 2, .. })));
        let badm = parse_bag("A #\n1 : y\n");
        assert!(matches!(badm, Err(ParseError::BadNumber { line: 2, .. })));
        let dup = parse_bag("A A #\n1 1 : 1\n");
        assert_eq!(dup, Err(ParseError::DuplicateAttribute("A".into())));
    }

    #[test]
    fn accumulate_overflow_reports_line() {
        let text = format!("A #\n1 : {}\n1 : 1\n", u64::MAX);
        assert_eq!(
            parse_bag(&text),
            Err(ParseError::MultiplicityOverflow { line: 3 })
        );
        let msg = parse_bag(&text).unwrap_err().to_string();
        assert!(msg.contains("line 3"), "{msg}");
        // comments shift physical line numbers and must be counted
        let text = format!("% c\nA #\n\n1 : {}\n% c\n1 : 1\n", u64::MAX);
        assert_eq!(
            parse_bag(&text),
            Err(ParseError::MultiplicityOverflow { line: 6 })
        );
    }

    #[test]
    fn delta_lines_parse() {
        assert_eq!(parse_delta_line("", 1).unwrap(), None);
        assert_eq!(parse_delta_line("  % comment", 2).unwrap(), None);
        assert_eq!(
            parse_delta_line("0 1 2 : +1", 3).unwrap(),
            Some((0, vec![Value(1), Value(2)], 1))
        );
        assert_eq!(
            parse_delta_line("2 7 : -3", 4).unwrap(),
            Some((2, vec![Value(7)], -3))
        );
        assert_eq!(
            parse_delta_line("1 5 5", 5).unwrap(),
            Some((1, vec![Value(5), Value(5)], 1)),
            "omitted delta defaults to +1"
        );
        assert_eq!(
            parse_delta_line("0 : 1", 6).unwrap(),
            Some((0, vec![], 1)),
            "empty-schema bags take zero values"
        );
        assert!(matches!(
            parse_delta_line("x 1 : 1", 7),
            Err(ParseError::BadNumber { line: 7, .. })
        ));
        assert!(matches!(
            parse_delta_line("0 1 : ++2", 8),
            Err(ParseError::BadNumber { line: 8, .. })
        ));
    }

    #[test]
    fn symbolic_names_are_interned() {
        let text = "Origin Dest #\n0 1 : 120\n0 2 : 80\n";
        let (bag, names) = parse_bag(text).unwrap();
        assert_eq!(bag.support_size(), 2);
        let a = bag.schema().attrs()[0];
        let b = bag.schema().attrs()[1];
        assert_eq!(names.name(a), "Origin");
        assert_eq!(names.name(b), "Dest");
    }

    #[test]
    fn parse_relation_rejects_multiplicities() {
        assert!(parse_relation("A #\n1 : 1\n2 : 1\n").is_ok());
        assert!(parse_relation("A #\n1 : 2\n").is_err());
    }

    #[test]
    fn shared_interner_keeps_names_consistent_across_files() {
        let mut interner = NameInterner::new();
        let r = parse_bag_with("A B #\n0 0 : 1\n", &mut interner).unwrap();
        let s = parse_bag_with("B C #\n0 0 : 1\n", &mut interner).unwrap();
        // "B" must denote the same attribute in both bags
        let shared = r.schema().intersection(s.schema());
        assert_eq!(shared.arity(), 1);
        assert_eq!(interner.names().name(shared.attrs()[0]), "B");
        // canonical and symbolic ids do not collide
        let t = parse_bag_with("A0 D #\n1 2 : 1\n", &mut interner).unwrap();
        assert_eq!(t.schema().arity(), 2);
    }

    #[test]
    fn empty_bag_roundtrip() {
        let (bag, names) = parse_bag("A B #\n").unwrap();
        assert!(bag.is_empty());
        let written = write_bag(&bag, &names);
        let (bag2, _) = parse_bag(&written).unwrap();
        assert_eq!(bag, bag2);
    }
}
