//! Std-only failpoints for chaos testing (the `fault-injection` feature).
//!
//! A **failpoint site** is a named call to [`fire`] placed on an
//! interesting code path — inside a seal's shard task, a join's merge
//! worker, the flow-network builder, the reaugment step, the stream
//! update. Without the `fault-injection` feature every site compiles to
//! an empty inlined function: zero overhead, nothing to configure.
//!
//! With the feature enabled, a test can *arm* a site:
//!
//! * `FaultAction::Panic` — the Nth hit of the site panics, exercising
//!   the executor's panic containment and every caller's
//!   leave-operands-untouched invariant;
//! * `FaultAction::InjectDeadline` — the Nth hit trips a process-global
//!   flag that makes every [`crate::Deadline::poll`] report
//!   [`crate::AbortReason::DeadlineExceeded`], exercising the
//!   cooperative-cancellation paths without waiting on a real clock.
//!
//! Registered sites (kept in sync with the chaos suite and ROADMAP):
//!
//! | site | path |
//! |---|---|
//! | `bag::seal` | [`crate::Bag::try_seal_with`] re-layout shard task |
//! | `bag::reseal_delta::merge` | [`crate::Bag::apply_delta_with`] fresh-tail merge task |
//! | `join::merge::shard` | merge-join shard task ([`crate::join::bag_join_merge_with`]) |
//! | `join::hash::shard` | hash-join probe shard task |
//! | `network::build` | flow-network middle-edge build shard |
//! | `network::reaugment` | Dinic reaugmentation entry |
//! | `stream::update` | consistency-stream update entry |
//!
//! Arming is process-global (sites are hit from worker threads), so
//! tests that arm failpoints must serialize on `test_lock` — the chaos
//! suite does.

#[cfg(feature = "fault-injection")]
mod armed {
    use std::collections::HashMap;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};

    /// What an armed failpoint does when its trigger count is reached.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum FaultAction {
        /// Panic with a message naming the site.
        Panic,
        /// Trip the global injected-deadline flag (see
        /// [`super::deadline_injected`]).
        InjectDeadline,
    }

    #[derive(Clone, Copy, Debug)]
    struct Arm {
        action: FaultAction,
        /// Fires on the Nth hit (1-based); earlier hits pass through.
        nth: u64,
        hits: u64,
    }

    fn registry() -> MutexGuard<'static, HashMap<&'static str, Arm>> {
        static REGISTRY: OnceLock<Mutex<HashMap<&'static str, Arm>>> = OnceLock::new();
        REGISTRY
            .get_or_init(Default::default)
            .lock()
            // A panic *is* the product here; the map stays consistent.
            .unwrap_or_else(PoisonError::into_inner)
    }

    static DEADLINE_INJECTED: AtomicBool = AtomicBool::new(false);

    /// True once an [`FaultAction::InjectDeadline`] failpoint fired;
    /// cleared by [`reset`].
    pub fn deadline_injected() -> bool {
        DEADLINE_INJECTED.load(Ordering::Relaxed)
    }

    /// Arms `site` to perform `action` on its `nth` hit (1-based) after
    /// this call. Re-arming a site resets its hit count.
    pub fn arm(site: &'static str, action: FaultAction, nth: u64) {
        registry().insert(
            site,
            Arm {
                action,
                nth: nth.max(1),
                hits: 0,
            },
        );
    }

    /// Disarms every site and clears the injected-deadline flag.
    pub fn reset() {
        registry().clear();
        DEADLINE_INJECTED.store(false, Ordering::Relaxed);
    }

    /// Failpoint hit. Panics (or trips the deadline flag) when `site` is
    /// armed and this is its Nth hit.
    pub fn fire(site: &'static str) {
        let action = {
            let mut reg = registry();
            let Some(arm) = reg.get_mut(site) else {
                return;
            };
            arm.hits += 1;
            if arm.hits != arm.nth {
                return;
            }
            arm.action
        };
        match action {
            FaultAction::Panic => panic!("failpoint {site} armed to panic"),
            FaultAction::InjectDeadline => DEADLINE_INJECTED.store(true, Ordering::Relaxed),
        }
    }

    /// Serializes tests that arm failpoints (arming is process-global).
    pub fn test_lock() -> MutexGuard<'static, ()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        LOCK.get_or_init(Default::default)
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(feature = "fault-injection")]
pub use armed::{arm, deadline_injected, fire, reset, test_lock, FaultAction};

/// Failpoint hit; a no-op without the `fault-injection` feature.
#[cfg(not(feature = "fault-injection"))]
#[inline(always)]
pub fn fire(_site: &str) {}

#[cfg(all(test, feature = "fault-injection"))]
mod tests {
    use super::*;

    #[test]
    fn nth_hit_panics_and_reset_disarms() {
        let _guard = test_lock();
        reset();
        arm("test::site", FaultAction::Panic, 2);
        fire("test::site"); // first hit passes
        let err = std::panic::catch_unwind(|| fire("test::site")).unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("test::site"), "got: {msg}");
        reset();
        fire("test::site"); // disarmed: no panic
    }

    #[test]
    fn deadline_injection_trips_polls() {
        let _guard = test_lock();
        reset();
        arm("test::deadline", FaultAction::InjectDeadline, 1);
        assert_eq!(crate::Deadline::NONE.poll(), None);
        fire("test::deadline");
        assert!(deadline_injected());
        // An unlimited deadline stays unlimited; an armed one trips.
        assert_eq!(crate::Deadline::NONE.poll(), None);
        let d = crate::Deadline::after(std::time::Duration::from_secs(3600));
        assert_eq!(d.poll(), Some(crate::AbortReason::DeadlineExceeded));
        reset();
        assert_eq!(d.poll(), None);
    }
}
