//! Optional human-readable attribute names.
//!
//! Algorithms never consult names; they exist so examples and the
//! experiment harness can print `Origin`, `Dest`, `Carrier` instead of
//! `A0`, `A1`, `A2`.

use crate::{Attr, FxHashMap};

/// A registry assigning display names to attributes.
#[derive(Default, Clone, Debug, PartialEq, Eq)]
pub struct AttrNames {
    names: FxHashMap<Attr, String>,
    next: u32,
}

impl AttrNames {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a fresh attribute with the given name.
    pub fn fresh(&mut self, name: impl Into<String>) -> Attr {
        let a = Attr::new(self.next);
        self.next += 1;
        self.names.insert(a, name.into());
        a
    }

    /// Assigns a name to an existing attribute id.
    pub fn set(&mut self, a: Attr, name: impl Into<String>) {
        self.next = self.next.max(a.id() + 1);
        self.names.insert(a, name.into());
    }

    /// The display name of `a` (falls back to `A{id}`).
    pub fn name(&self, a: Attr) -> String {
        self.names.get(&a).cloned().unwrap_or_else(|| a.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_allocates_distinct_attrs() {
        let mut n = AttrNames::new();
        let a = n.fresh("Origin");
        let b = n.fresh("Dest");
        assert_ne!(a, b);
        assert_eq!(n.name(a), "Origin");
        assert_eq!(n.name(b), "Dest");
    }

    #[test]
    fn fallback_and_set() {
        let mut n = AttrNames::new();
        assert_eq!(n.name(Attr::new(7)), "A7");
        n.set(Attr::new(7), "City");
        assert_eq!(n.name(Attr::new(7)), "City");
        // fresh after set must not collide with id 7
        let a = n.fresh("X");
        assert!(a.id() > 7);
    }
}
