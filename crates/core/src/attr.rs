//! Attributes and domain values.
//!
//! The paper (Section 2) treats an *attribute* as a symbol with an
//! associated domain, and tuples as functions from attributes to domain
//! elements. We intern both as integer newtypes: an [`Attr`] is an opaque
//! attribute identifier and a [`Value`] is an element of some attribute's
//! domain. Human-readable names can be attached with
//! [`crate::names::AttrNames`]; none of the algorithms depend on names.

use std::fmt;

/// An attribute identifier.
///
/// Ordering of attributes is the canonical order used by [`crate::Schema`]
/// to align tuple rows; it carries no semantic meaning beyond determinism.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Attr(pub u32);

impl Attr {
    /// Creates an attribute with the given identifier.
    #[inline]
    pub const fn new(id: u32) -> Self {
        Attr(id)
    }

    /// The raw identifier.
    #[inline]
    pub const fn id(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for Attr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "A{}", self.0)
    }
}

impl fmt::Display for Attr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "A{}", self.0)
    }
}

impl From<u32> for Attr {
    #[inline]
    fn from(id: u32) -> Self {
        Attr(id)
    }
}

/// A domain element.
///
/// Domains in the paper's constructions are always finite sets of the form
/// `{0, …, d-1}` or `[n]`, so a 64-bit integer comfortably encodes every
/// value that appears; applications with symbolic domains should intern
/// their symbols to dense integers.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Value(pub u64);

impl Value {
    /// Creates a value.
    #[inline]
    pub const fn new(v: u64) -> Self {
        Value(v)
    }

    /// The raw integer.
    #[inline]
    pub const fn get(self) -> u64 {
        self.0
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u64> for Value {
    #[inline]
    fn from(v: u64) -> Self {
        Value(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attr_ordering_is_by_id() {
        assert!(Attr::new(0) < Attr::new(1));
        assert!(Attr::new(7) > Attr::new(3));
        assert_eq!(Attr::new(5), Attr::from(5));
    }

    #[test]
    fn value_roundtrip() {
        let v = Value::new(u64::MAX);
        assert_eq!(v.get(), u64::MAX);
        assert_eq!(Value::from(9).to_string(), "9");
    }

    #[test]
    fn attr_display() {
        assert_eq!(Attr::new(3).to_string(), "A3");
        assert_eq!(format!("{:?}", Attr::new(3)), "A3");
    }
}
