//! Adversarial perturbations of consistent families.
//!
//! Starting from a consistent family, these helpers produce inputs with a
//! *known* defect, so decision procedures can be tested on both answers.

use bagcons_core::{Bag, Result, Value};
use rand::Rng;

/// Bumps the multiplicity of one random support tuple of one random bag
/// by 1, breaking (at least) every marginal that tuple participates in.
/// Returns the index of the perturbed bag. No-op (returns `None`) when
/// every bag is empty.
pub fn bump_one_tuple<R: Rng>(bags: &mut [Bag], rng: &mut R) -> Result<Option<usize>> {
    let candidates: Vec<usize> = (0..bags.len()).filter(|&i| !bags[i].is_empty()).collect();
    let Some(&i) = candidates.get(rng.gen_range(0..candidates.len().max(1))) else {
        return Ok(None);
    };
    let rows = bags[i].sorted_rows();
    let (row, _) = rows[rng.gen_range(0..rows.len())];
    let row: Vec<Value> = row.to_vec();
    bags[i].insert(row, 1)?;
    Ok(Some(i))
}

/// Scales one bag by `k ≥ 2`, preserving its internal structure but
/// breaking its shared marginals (all totals change).
pub fn scale_one(bags: &mut [Bag], index: usize, k: u64) -> Result<()> {
    bags[index] = bags[index].scale(k)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::consistent::planted_family;
    use bagcons::pairwise::pairwise_consistent;
    use bagcons_hypergraph::path;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn bump_breaks_consistency() {
        let mut rng = StdRng::seed_from_u64(5);
        let (mut bags, _) = planted_family(&path(4), 3, 30, 5, &mut rng).unwrap();
        {
            let refs: Vec<&Bag> = bags.iter().collect();
            assert!(pairwise_consistent(&refs).unwrap());
        }
        let idx = bump_one_tuple(&mut bags, &mut rng).unwrap();
        assert!(idx.is_some());
        let refs: Vec<&Bag> = bags.iter().collect();
        assert!(!pairwise_consistent(&refs).unwrap());
    }

    #[test]
    fn scale_breaks_totals() {
        let mut rng = StdRng::seed_from_u64(6);
        let (mut bags, _) = planted_family(&path(3), 3, 20, 5, &mut rng).unwrap();
        scale_one(&mut bags, 0, 3).unwrap();
        let refs: Vec<&Bag> = bags.iter().collect();
        assert!(!pairwise_consistent(&refs).unwrap());
    }

    #[test]
    fn bump_on_empty_collection_is_noop() {
        let mut bags: Vec<Bag> = vec![];
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(bump_one_tuple(&mut bags, &mut rng).unwrap(), None);
    }
}
