//! The paper's own example families.
//!
//! * [`section3_pair`] — the bags `R_{n-1}(A,B)`, `S_{n-1}(B,C)` of
//!   Section 3: consistent, with **exactly `2^{n-1}` witnesses**, all
//!   pairwise incomparable under bag containment, and every witness
//!   support strictly inside `(R ⋈ S)'`.
//! * [`example1_chain`] — Example 1 (Section 5.2): path bags with
//!   multiplicity `2ⁿ` whose *bag-join-style* witness `J` has `2ⁿ` support
//!   tuples — exponentially bigger than the input — while minimal
//!   witnesses stay polynomial (Theorem 3(3)).
//! * [`random_graph`] — Erdős–Rényi graphs for the \[HLY80\] 3-colorability
//!   reduction in the set-semantics baseline.

use bagcons_core::{Attr, Bag, Result, Schema, Value};
use rand::Rng;

/// Section 3's family: returns `(R_{n-1}, S_{n-1})` for `n ≥ 2`.
///
/// `R_{n-1}(A,B) = {(1,2):1, (2,2):1, (1,3):1, (3,3):1, …, (1,n):1, (n,n):1}`
/// `S_{n-1}(B,C) = {(2,1):1, (2,2):1, (3,1):1, (3,3):1, …, (n,1):1, (n,n):1}`
/// with `A = A0`, `B = A1`, `C = A2`.
///
/// # Panics
/// Panics if `n < 2`.
pub fn section3_pair(n: u64) -> Result<(Bag, Bag)> {
    assert!(n >= 2, "the Section 3 family needs n >= 2");
    let ab = Schema::from_attrs([Attr(0), Attr(1)]);
    let bc = Schema::from_attrs([Attr(1), Attr(2)]);
    let mut r = Bag::new(ab);
    let mut s = Bag::new(bc);
    for v in 2..=n {
        r.insert(vec![Value(1), Value(v)], 1)?;
        r.insert(vec![Value(v), Value(v)], 1)?;
        s.insert(vec![Value(v), Value(1)], 1)?;
        s.insert(vec![Value(v), Value(v)], 1)?;
    }
    Ok((r, s))
}

/// Example 1's chain: bags `R_1(A_0A_1), …, R_{n-1}(A_{n-2}A_{n-1})` with
/// support `{0,1}²` and multiplicity `2ⁿ` per tuple. The uniform bag `J`
/// over `{0,1}ⁿ` with multiplicity 4 witnesses their global consistency
/// and has `2ⁿ` support tuples — exponential in the binary input size
/// `4(n-1)(n+1)`.
///
/// # Panics
/// Panics if `n < 2` or `n > 62` (multiplicities must fit `u64`).
pub fn example1_chain(n: u32) -> Result<Vec<Bag>> {
    assert!((2..=62).contains(&n), "need 2 <= n <= 62");
    let mult = 1u64 << n;
    let mut bags = Vec::with_capacity((n - 1) as usize);
    for i in 0..n - 1 {
        let schema = Schema::from_attrs([Attr(i), Attr(i + 1)]);
        let mut bag = Bag::new(schema);
        for a in 0..2u64 {
            for b in 0..2u64 {
                bag.insert(vec![Value(a), Value(b)], mult)?;
            }
        }
        bags.push(bag);
    }
    Ok(bags)
}

/// The uniform witness `J` of Example 1: support `{0,1}ⁿ`, multiplicity 4.
/// Exponentially large — build only for small `n`.
pub fn example1_uniform_witness(n: u32) -> Result<Bag> {
    assert!((2..=20).contains(&n), "2^n support tuples; keep n small");
    let schema = Schema::from_attrs((0..n).map(Attr));
    let mut bag = Bag::with_capacity(schema, 1 << n);
    for bits in 0..(1u64 << n) {
        let row: Vec<Value> = (0..n).map(|i| Value((bits >> i) & 1)).collect();
        bag.insert(row, 4)?;
    }
    Ok(bag)
}

/// An Erdős–Rényi `G(n, p)` edge list over vertices `0..n`.
pub fn random_graph<R: Rng>(n: u32, p: f64, rng: &mut R) -> Vec<(u32, u32)> {
    let mut edges = Vec::new();
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.gen_bool(p) {
                edges.push((u, v));
            }
        }
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use bagcons::global::is_global_witness;
    use bagcons::pairwise::bags_consistent;
    use bagcons_lp::ilp::{count_solutions, SolverConfig};
    use bagcons_lp::ConsistencyProgram;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn section3_base_case_matches_paper_text() {
        let (r, s) = section3_pair(2).unwrap();
        assert_eq!(r.support_size(), 2);
        assert_eq!(s.support_size(), 2);
        assert_eq!(r.multiplicity(&[Value(1), Value(2)]), 1);
        assert_eq!(s.multiplicity(&[Value(2), Value(1)]), 1);
        assert!(bags_consistent(&r, &s).unwrap());
    }

    #[test]
    fn section3_witness_count_is_two_to_the_n_minus_one() {
        // "there are exactly 2^{n-1} bags witnessing their consistency"
        for n in 2..=6u64 {
            let (r, s) = section3_pair(n).unwrap();
            let prog = ConsistencyProgram::build(&[&r, &s]).unwrap();
            let (count, complete) = count_solutions(&prog, &SolverConfig::default(), 1 << 20);
            assert!(complete);
            assert_eq!(count, 1 << (n - 1), "n = {n}");
        }
    }

    #[test]
    fn example1_chain_has_uniform_witness() {
        for n in 2..=8u32 {
            let bags = example1_chain(n).unwrap();
            let refs: Vec<&Bag> = bags.iter().collect();
            let j = example1_uniform_witness(n).unwrap();
            assert!(is_global_witness(&j, &refs).unwrap(), "n = {n}");
            assert_eq!(j.support_size(), 1 << n);
        }
    }

    #[test]
    fn example1_input_size_is_polynomial() {
        // binary input size ~ 4(n-1) tuples × (n+1)-ish bits each
        let n = 10;
        let bags = example1_chain(n).unwrap();
        let total_bits: u64 = bags.iter().map(|b| b.binary_size()).sum();
        assert_eq!(total_bits, 4 * (n as u64 - 1) * (n as u64 + 1));
    }

    #[test]
    fn random_graph_edge_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = random_graph(10, 0.5, &mut rng);
        assert!(g.len() <= 45);
        assert!(g.iter().all(|&(u, v)| u < v && v < 10));
        let empty = random_graph(10, 0.0, &mut rng);
        assert!(empty.is_empty());
        let full = random_graph(5, 1.0, &mut rng);
        assert_eq!(full.len(), 10);
    }
}
