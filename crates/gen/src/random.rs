//! Random bags, relations, and hypergraphs.

use bagcons_core::{Attr, Bag, Relation, Schema, Value};
use bagcons_hypergraph::Hypergraph;
use rand::Rng;

/// A random bag over `schema`: up to `support` distinct tuples with values
/// in `0..domain` and multiplicities in `1..=max_mult`. The actual support
/// may be smaller when collisions occur (duplicates accumulate).
pub fn random_bag<R: Rng>(
    schema: &Schema,
    domain: u64,
    support: usize,
    max_mult: u64,
    rng: &mut R,
) -> Bag {
    assert!(domain > 0 && max_mult > 0);
    let mut bag = Bag::with_capacity(schema.clone(), support);
    for _ in 0..support {
        let row: Vec<Value> = (0..schema.arity())
            .map(|_| Value(rng.gen_range(0..domain)))
            .collect();
        let mult = rng.gen_range(1..=max_mult);
        bag.insert(row, mult)
            .expect("random multiplicities stay far from u64::MAX");
    }
    // Hand out the at-rest representation: one sealed sorted run.
    bag.seal();
    bag
}

/// A random relation over `schema` with up to `size` tuples.
pub fn random_relation<R: Rng>(schema: &Schema, domain: u64, size: usize, rng: &mut R) -> Relation {
    assert!(domain > 0);
    let mut rel = Relation::new(schema.clone());
    for _ in 0..size {
        let row: Vec<Value> = (0..schema.arity())
            .map(|_| Value(rng.gen_range(0..domain)))
            .collect();
        rel.insert(row).expect("arity matches schema");
    }
    rel.seal();
    rel
}

/// A random hypergraph: `edges` hyperedges of arity `2..=max_arity` over
/// vertices `0..vertices`. Duplicate edges collapse, so the result may
/// have fewer edges. Useful for cross-validating the structural
/// characterizations of Theorem 1/2 on unstructured inputs.
pub fn random_hypergraph<R: Rng>(
    vertices: u32,
    edges: usize,
    max_arity: usize,
    rng: &mut R,
) -> Hypergraph {
    assert!(vertices >= 2 && max_arity >= 2);
    let es = (0..edges).map(|_| {
        let arity = rng.gen_range(2..=max_arity);
        Schema::from_attrs((0..arity).map(|_| Attr::new(rng.gen_range(0..vertices))))
    });
    Hypergraph::from_edges(es.filter(|e| !e.is_empty()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn schema(ids: &[u32]) -> Schema {
        Schema::from_attrs(ids.iter().map(|&i| Attr::new(i)))
    }

    #[test]
    fn random_bag_respects_parameters() {
        let mut rng = StdRng::seed_from_u64(42);
        let b = random_bag(&schema(&[0, 1]), 4, 50, 9, &mut rng);
        assert!(b.support_size() <= 50);
        assert!(b.multiplicity_bound() > 0);
        for (row, _) in b.iter() {
            assert!(row.iter().all(|v| v.get() < 4));
        }
    }

    #[test]
    fn deterministic_from_seed() {
        let a = random_bag(&schema(&[0, 1]), 8, 20, 5, &mut StdRng::seed_from_u64(7));
        let b = random_bag(&schema(&[0, 1]), 8, 20, 5, &mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
    }

    #[test]
    fn random_relation_within_domain() {
        let mut rng = StdRng::seed_from_u64(1);
        let r = random_relation(&schema(&[0, 1, 2]), 3, 30, &mut rng);
        assert!(r.len() <= 30);
        assert!(r.len() <= 27); // at most 3^3 distinct tuples
    }

    #[test]
    fn random_hypergraph_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let h = random_hypergraph(8, 10, 4, &mut rng);
        assert!(h.num_edges() <= 10);
        assert!(h.num_vertices() <= 8);
        assert!(h.edges().iter().all(|e| e.arity() >= 1 && e.arity() <= 4));
    }
}
