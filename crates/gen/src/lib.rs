//! # `bagcons-gen`
//!
//! Workload generators for the experiments, tests, and benchmarks of the
//! *Bag Consistency* reproduction.
//!
//! * [`random`] — random bags and relations with controlled support,
//!   domain, and multiplicity ranges;
//! * [`consistent`] — *planted* families: generate a hidden witness bag
//!   and marginalize it onto each hyperedge, guaranteeing global (hence
//!   pairwise) consistency;
//! * [`perturb`] — adversarial modifications (break one marginal, scale a
//!   single bag) used to produce inconsistent inputs with known cause;
//! * [`tables`] — synthetic 3-D contingency-table instances (the
//!   Irving–Jerrum problem behind Lemma 6), planted-satisfiable and
//!   Tseitin-unsatisfiable (see DESIGN.md §5 on this substitution);
//! * [`families`] — the paper's own example families: the
//!   `2^{n-1}`-witness pair of Section 3, Example 1's exponential
//!   bag-join chain, and random graphs for the \[HLY80\] set-case
//!   reduction.
//!
//! All generators take explicit [`rand`] RNGs so every experiment is
//! reproducible from a seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod consistent;
pub mod families;
pub mod perturb;
pub mod random;
pub mod tables;

pub use consistent::{planted_family, planted_pair};
pub use families::{example1_chain, section3_pair};
pub use random::{random_bag, random_relation};
pub use tables::{planted_3dct, tseitin_3dct};
