//! Synthetic 3-dimensional contingency tables (the \[IJ94\] problem).
//!
//! The paper's NP-hardness for GCPB(C₃) rests on the 3DCT problem of
//! Irving and Jerrum. Their hard instances are not published as data, so
//! (per the substitution rule documented in DESIGN.md §5) we generate
//! synthetic equivalents with the same input format — three `n × n`
//! margins — in two flavours:
//!
//! * [`planted_3dct`] — margins of a random explicit table: always
//!   satisfiable, with the table as hidden certificate;
//! * [`tseitin_3dct`] — margins from the (scaled) parity construction:
//!   pairwise consistent yet unsatisfiable, realizing the paper's own
//!   obstruction at contingency-table scale.

use bagcons::reductions::ContingencyTable3D;
use bagcons::tseitin::tseitin_bags;
use bagcons_core::{Bag, Result};
use bagcons_hypergraph::triangle;
use rand::Rng;

/// Margins of a uniformly random `n × n × n` table with cell values in
/// `0..=max_cell`. Always satisfiable.
pub fn planted_3dct<R: Rng>(n: usize, max_cell: u64, rng: &mut R) -> ContingencyTable3D {
    let table: Vec<Vec<Vec<u64>>> = (0..n)
        .map(|_| {
            (0..n)
                .map(|_| (0..n).map(|_| rng.gen_range(0..=max_cell)).collect())
                .collect()
        })
        .collect();
    ContingencyTable3D::from_table(&table).expect("bounded cells cannot overflow")
}

/// A **sparse** planted table: exactly `nonzeros` random cells get values
/// in `1..=max_cell`. Sparse margins make the exact search do real
/// branching, which is what the hardness benchmarks measure.
pub fn sparse_3dct<R: Rng>(
    n: usize,
    nonzeros: usize,
    max_cell: u64,
    rng: &mut R,
) -> ContingencyTable3D {
    let mut table = vec![vec![vec![0u64; n]; n]; n];
    for _ in 0..nonzeros {
        let (i, j, k) = (
            rng.gen_range(0..n),
            rng.gen_range(0..n),
            rng.gen_range(0..n),
        );
        table[i][j][k] = rng.gen_range(1..=max_cell);
    }
    ContingencyTable3D::from_table(&table).expect("bounded cells cannot overflow")
}

/// An **unsatisfiable** instance over domain `{0,1}` (so `n = 2`): the
/// parity margins scaled by `scale`. All three margins remain pairwise
/// consistent; no table matches them (Theorem 2's Tseitin argument).
pub fn tseitin_3dct(scale: u64) -> Result<ContingencyTable3D> {
    let bags = tseitin_bags(&triangle()).expect("triangle is 2-uniform 2-regular");
    let scaled: Result<Vec<Bag>> = bags.iter().map(|b| b.scale(scale)).collect();
    let scaled = scaled?;
    // bags come in edge order {A0,A1}, {A0,A2}, {A1,A2}; read them back
    // into the margin matrices F(XY), R(XZ), C(YZ).
    let mut inst = ContingencyTable3D {
        n: 2,
        r: vec![vec![0; 2]; 2],
        c: vec![vec![0; 2]; 2],
        f: vec![vec![0; 2]; 2],
    };
    for bag in &scaled {
        let attrs: Vec<u32> = bag.schema().iter().map(|a| a.id()).collect();
        for (row, m) in bag.iter() {
            let (a, b) = (row[0].get() as usize, row[1].get() as usize);
            match (attrs[0], attrs[1]) {
                (0, 1) => inst.f[a][b] = m,
                (0, 2) => inst.r[a][b] = m,
                (1, 2) => inst.c[a][b] = m,
                other => unreachable!("triangle edge {other:?}"),
            }
        }
    }
    Ok(inst)
}

/// Margins with one cell bumped — satisfiability no longer planted; used
/// to produce "don't know a certificate" decision workloads.
pub fn bumped_3dct<R: Rng>(base: &ContingencyTable3D, rng: &mut R) -> ContingencyTable3D {
    let mut inst = base.clone();
    let n = inst.n;
    let which = rng.gen_range(0..3);
    let (i, j) = (rng.gen_range(0..n), rng.gen_range(0..n));
    let m = match which {
        0 => &mut inst.r[i][j],
        1 => &mut inst.c[i][j],
        _ => &mut inst.f[i][j],
    };
    *m += 1;
    inst
}

#[cfg(test)]
mod tests {
    use super::*;
    use bagcons::global::globally_consistent_via_ilp;
    use bagcons::pairwise::pairwise_consistent;
    use bagcons_lp::ilp::{IlpOutcome, SolverConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn planted_is_sat() {
        let mut rng = StdRng::seed_from_u64(9);
        let inst = planted_3dct(3, 4, &mut rng);
        let bags = inst.to_bags().unwrap();
        let refs: Vec<&Bag> = bags.iter().collect();
        let dec = globally_consistent_via_ilp(&refs, &SolverConfig::default()).unwrap();
        assert!(dec.outcome.is_sat());
    }

    #[test]
    fn sparse_is_sat_and_sparse() {
        let mut rng = StdRng::seed_from_u64(10);
        let inst = sparse_3dct(4, 5, 3, &mut rng);
        let bags = inst.to_bags().unwrap();
        assert!(bags.iter().all(|b| b.support_size() <= 5));
        let refs: Vec<&Bag> = bags.iter().collect();
        let dec = globally_consistent_via_ilp(&refs, &SolverConfig::default()).unwrap();
        assert!(dec.outcome.is_sat());
    }

    #[test]
    fn tseitin_is_pairwise_consistent_but_unsat() {
        for scale in [1u64, 7, 1 << 20] {
            let inst = tseitin_3dct(scale).unwrap();
            let bags = inst.to_bags().unwrap();
            let refs: Vec<&Bag> = bags.iter().collect();
            assert!(pairwise_consistent(&refs).unwrap(), "scale {scale}");
            let dec = globally_consistent_via_ilp(&refs, &SolverConfig::default()).unwrap();
            assert_eq!(dec.outcome, IlpOutcome::Unsat, "scale {scale}");
        }
    }

    #[test]
    fn bumped_changes_some_margin() {
        let mut rng = StdRng::seed_from_u64(11);
        let base = planted_3dct(2, 3, &mut rng);
        let bumped = bumped_3dct(&base, &mut rng);
        let same = base.r == bumped.r && base.c == bumped.c && base.f == bumped.f;
        assert!(!same);
    }
}
