//! Planted consistent families.
//!
//! Generating a random witness bag `T` over the full vertex set and
//! marginalizing it onto every hyperedge yields a collection that is
//! globally consistent *by construction* — with `T` as the hidden
//! certificate. This is the standard planted-instance trick and exercises
//! the complete solver path (flow chains on acyclic schemas, ILP search on
//! cyclic ones) with a known ground truth.

use crate::random::random_bag;
use bagcons_core::{Bag, Result};
use bagcons_hypergraph::Hypergraph;
use rand::Rng;

/// Plants a globally consistent family over the hyperedges of `h`:
/// returns the bags (in `h.edges()` order) and the hidden witness.
pub fn planted_family<R: Rng>(
    h: &Hypergraph,
    domain: u64,
    support: usize,
    max_mult: u64,
    rng: &mut R,
) -> Result<(Vec<Bag>, Bag)> {
    let witness = random_bag(h.vertices(), domain, support, max_mult, rng);
    let bags: Result<Vec<Bag>> = h
        .edges()
        .iter()
        .map(|x| {
            let mut b = witness.marginal(x)?;
            b.seal();
            Ok(b)
        })
        .collect();
    Ok((bags?, witness))
}

/// Plants a consistent pair of bags over two explicit schemas.
pub fn planted_pair<R: Rng>(
    x: &bagcons_core::Schema,
    y: &bagcons_core::Schema,
    domain: u64,
    support: usize,
    max_mult: u64,
    rng: &mut R,
) -> Result<(Bag, Bag)> {
    let xy = x.union(y);
    let witness = random_bag(&xy, domain, support, max_mult, rng);
    let mut r = witness.marginal(x)?;
    let mut s = witness.marginal(y)?;
    r.seal();
    s.seal();
    Ok((r, s))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bagcons::global::is_global_witness;
    use bagcons::pairwise::{bags_consistent, pairwise_consistent};
    use bagcons_core::{Attr, Schema};
    use bagcons_hypergraph::{cycle, path, star};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn planted_family_is_globally_consistent() {
        let mut rng = StdRng::seed_from_u64(3);
        for h in [path(5), star(4), cycle(4)] {
            let (bags, witness) = planted_family(&h, 3, 40, 6, &mut rng).unwrap();
            let refs: Vec<&Bag> = bags.iter().collect();
            assert!(pairwise_consistent(&refs).unwrap());
            assert!(is_global_witness(&witness, &refs).unwrap());
        }
    }

    #[test]
    fn planted_pair_is_consistent() {
        let mut rng = StdRng::seed_from_u64(11);
        let x = Schema::from_attrs([Attr(0), Attr(1)]);
        let y = Schema::from_attrs([Attr(1), Attr(2)]);
        let (r, s) = planted_pair(&x, &y, 4, 30, 8, &mut rng).unwrap();
        assert!(bags_consistent(&r, &s).unwrap());
    }
}
