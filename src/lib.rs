//! # bag-consistency
//!
//! Facade crate for the reproduction of **“Structure and Complexity of Bag
//! Consistency”** (Albert Atserias & Phokion G. Kolaitis, PODS 2021,
//! arXiv:2012.12126).
//!
//! The workspace is organised bottom-up:
//!
//! * [`core`] — bags, relations, schemas, marginals, joins,
//!   and the shard-parallel execution layer ([`ExecConfig`](bagcons_core::ExecConfig));
//! * [`hypergraph`] — acyclicity structure theory
//!   (chordality, conformality, GYO, join trees, running-intersection
//!   orders, safe deletions, minimal obstructions);
//! * [`flow`] — integral max-flow and the consistency network
//!   `N(R,S)`;
//! * [`lp`] — the linear program `P(R₁,…,R_m)`, exact integer
//!   search, Carathéodory / Eisenbrand–Shmonin sparsification;
//! * [`snap`] — the versioned binary snapshot container: sealed arenas,
//!   multiplicity columns, schemas, names, and warm stream flows as
//!   content-hashed sections that load with no re-parse, re-intern, or
//!   re-sort ([`Session::load_snapshot`](bagcons::session::Session::load_snapshot));
//! * [`bagcons`] — the paper's algorithms behind the [`Session`] facade:
//!   two-bag consistency (Lemma 2), the local-to-global structure theorem
//!   (Theorem 2), the complexity dichotomy (Theorem 4), and witness
//!   construction (Theorems 5–6);
//! * [`gen`] — workload generators for tests, examples, and
//!   the experiment harness.
//!
//! ## Quickstart
//!
//! A [`Session`] carries all configuration (threads, search budgets,
//! attribute names) and returns typed outcomes that render to text or
//! JSON:
//!
//! ```
//! use bag_consistency::prelude::*;
//!
//! let mut session = Session::builder().threads(2).build()?;
//! let r = session.load_bag("A B #\n1 2 : 1\n2 2 : 1\n")?;
//! let s = session.load_bag("B C #\n2 1 : 1\n2 2 : 1\n")?;
//!
//! // Theorem 4 dichotomy: acyclic schema ⇒ polynomial path.
//! let outcome = session.check(&[&r, &s])?;
//! assert_eq!(outcome.decision, Decision::Consistent);
//! assert!(outcome.branch.is_acyclic());
//!
//! // Corollary 1: the witness marginalizes back onto both inputs.
//! let t = outcome.witness.as_ref().expect("consistent");
//! assert_eq!(t.marginal(r.schema())?, r);
//! assert_eq!(t.marginal(s.schema())?, s);
//!
//! // machine-readable reporting
//! let json = outcome.render(ReportFormat::Json, session.names());
//! assert!(json.contains("\"branch\":\"acyclic\""));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]

pub use bagcons;
pub use bagcons_core as core;
pub use bagcons_flow as flow;
pub use bagcons_gen as gen;
pub use bagcons_hypergraph as hypergraph;
pub use bagcons_lp as lp;
pub use bagcons_snap as snap;

pub use bagcons::session::Session;

/// One-stop imports for applications.
pub mod prelude {
    pub use bagcons::dichotomy::{GcpbOutcome, GcpbReport};
    pub use bagcons::report::{Lemma2Report, Render, ReportFormat};
    pub use bagcons::session::{
        Branch, CheckOutcome, CounterexampleOutcome, DatasetSource, Decision, DiagnoseOutcome,
        PairwiseOutcome, SchemaOutcome, Session, SessionBuilder, SessionError, StageTiming,
        WitnessOutcome,
    };
    #[allow(deprecated)]
    #[doc(hidden)]
    pub use bagcons::{
        acyclic::acyclic_global_witness,
        dichotomy::decide_global_consistency,
        global::{globally_consistent_via_ilp, is_global_witness},
        minimal::minimal_two_bag_witness,
        pairwise::{bags_consistent, consistency_witness, pairwise_consistent},
        tseitin::tseitin_bags,
    };
    pub use bagcons_core::{
        Attr, AttrNames, Bag, CoreError, ExecConfig, Relation, Schema, Tuple, Value,
    };
    pub use bagcons_hypergraph::Hypergraph;
    pub use bagcons_snap::{SnapError, Snapshot, SnapshotWriter};
}
