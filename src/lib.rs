//! # bag-consistency
//!
//! Facade crate for the reproduction of **“Structure and Complexity of Bag
//! Consistency”** (Albert Atserias & Phokion G. Kolaitis, PODS 2021,
//! arXiv:2012.12126).
//!
//! The workspace is organised bottom-up:
//!
//! * [`core`](bagcons_core) — bags, relations, schemas, marginals, joins;
//! * [`hypergraph`](bagcons_hypergraph) — acyclicity structure theory
//!   (chordality, conformality, GYO, join trees, running-intersection
//!   orders, safe deletions, minimal obstructions);
//! * [`flow`](bagcons_flow) — integral max-flow and the consistency network
//!   `N(R,S)`;
//! * [`lp`](bagcons_lp) — the linear program `P(R₁,…,R_m)`, exact integer
//!   search, Carathéodory / Eisenbrand–Shmonin sparsification;
//! * [`bagcons`] — the paper's algorithms: two-bag consistency (Lemma 2),
//!   the local-to-global structure theorem (Theorem 2), the complexity
//!   dichotomy (Theorem 4), and witness construction (Theorems 5–6);
//! * [`gen`](bagcons_gen) — workload generators for tests, examples, and
//!   the experiment harness.
//!
//! ## Quickstart
//!
//! ```
//! use bag_consistency::prelude::*;
//!
//! // Two bags over schemas {A0,A1} and {A1,A2}.
//! let x = Schema::range(0, 2);
//! let y = Schema::range(1, 3);
//! let r = Bag::from_u64s(x, [(&[1u64, 2][..], 1), (&[2, 2][..], 1)]).unwrap();
//! let s = Bag::from_u64s(y, [(&[2u64, 1][..], 1), (&[2, 2][..], 1)]).unwrap();
//!
//! // Lemma 2: consistency ⟺ equal marginals on the common attributes.
//! assert!(bags_consistent(&r, &s).unwrap());
//!
//! // Corollary 1: build a witness via max-flow.
//! let t = consistency_witness(&r, &s).unwrap().expect("consistent");
//! assert_eq!(t.marginal(r.schema()).unwrap(), r);
//! assert_eq!(t.marginal(s.schema()).unwrap(), s);
//! ```

#![forbid(unsafe_code)]

pub use bagcons;
pub use bagcons_core as core;
pub use bagcons_flow as flow;
pub use bagcons_gen as gen;
pub use bagcons_hypergraph as hypergraph;
pub use bagcons_lp as lp;

/// One-stop imports for applications.
pub mod prelude {
    pub use bagcons::{
        acyclic::acyclic_global_witness,
        dichotomy::{decide_global_consistency, GcpbOutcome, GcpbReport},
        global::{globally_consistent_via_ilp, is_global_witness},
        minimal::minimal_two_bag_witness,
        pairwise::{bags_consistent, consistency_witness, pairwise_consistent},
        tseitin::tseitin_bags,
    };
    pub use bagcons_core::{Attr, AttrNames, Bag, CoreError, Relation, Schema, Tuple, Value};
    pub use bagcons_hypergraph::Hypergraph;
}
