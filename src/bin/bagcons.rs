//! `bagcons` — command-line interface to the bag-consistency library,
//! a thin shell around [`bagcons::session::Session`].
//!
//! ```text
//! bagcons check [opts] <FILE>...          decide global consistency (dichotomy)
//! bagcons witness [opts] <FILE>...        print a witness bag, if one exists
//! bagcons diagnose [opts] <FILE>...       explain inconsistencies tuple-by-tuple
//! bagcons pairwise [opts] <FILE> <FILE>   cross-validate Lemma 2's five tests
//! bagcons schema [opts] <FILE>...         analyze the schema hypergraph
//! bagcons counterexample [opts] <FILE>... emit a pairwise-consistent but
//!                                         globally-inconsistent family over the
//!                                         same (cyclic) schema
//! bagcons watch [opts] <FILE>...          incremental mode: read multiplicity
//!                                         deltas from stdin, one per line, and
//!                                         re-emit a decision per delta
//! bagcons serve [opts] [<FILE>...]        long-lived daemon: host named datasets
//!                                         with copy-on-write generations and one
//!                                         delta-stream session per connection
//! bagcons snapshot save <OUT> <FILE>...   write the datasets as one binary
//!                                         snapshot (sealed arenas, content-hashed
//!                                         sections; loads with no re-parse/re-sort)
//! bagcons snapshot info <FILE>            print a snapshot's header + section table
//! bagcons snapshot verify <FILE>          check every section hash and decode
//!
//! options:
//!   --threads N         worker threads (default: one per core, capped at 8)
//!   --workers N         distribute the pairwise screen across N `bagcons
//!                       worker` child processes (default 0 = in-process);
//!                       applies to `check` and `serve`. Workers speak the
//!                       snapshot wire format over pipes (see bagcons-dist);
//!                       a killed or wedged worker degrades its share of the
//!                       pairs back to local execution, never changing the
//!                       decision
//!   --budget N          node budget for the cyclic exact search
//!                       (default 50000000)
//!   --timeout MS        wall-clock budget in milliseconds per operation
//!                       (per delta under `watch`, per request under `serve`);
//!                       on expiry the decision degrades to `unknown` (exit 3
//!                       / status 3) instead of hanging
//!   --format text|json  output format (default text)
//!
//! serve options:
//!   --listen ADDR         TCP listen address (default 127.0.0.1:0;
//!                         the bound address is printed on startup)
//!   --unix PATH           unix-domain socket path (unix only)
//!   --name NAME           dataset name for the preloaded FILEs
//!                         (default "default")
//!   --worker-budget N     max concurrent decision computations
//!                         (default: host parallelism)
//!   --max-connections N   connection cap (default 64)
//!   --data-dir DIR        allowlist root for client-supplied `load`/`save`
//!                         paths (canonicalized; escapes answer `err usage:`)
//! ```
//!
//! Each FILE holds one bag in the tabular text format of
//! [`bagcons_core::io`] (header `A B #`, rows `1 2 : 3`,
//! `%`-comments) **or** a binary snapshot written by `bagcons snapshot
//! save` (auto-detected by magic bytes; a snapshot may carry several
//! bags). `watch` additionally reads delta lines
//! `<bag-index> <values...> : <±delta>` from stdin (0-based index in
//! FILE order, values in the bag's schema order, `: delta` defaulting
//! to `+1`) and re-decides incrementally after each one: cached
//! per-pair flow networks are repaired in place for support-preserving
//! edits instead of rebuilding from scratch. A `batch` line opens a
//! delta group that is applied — and decided — as one atomic update on
//! the matching `end` line, amortizing pair repair across the burst.
//! Exit codes: 0 = yes/ok, 1 = no, 2 = usage or input error, 3 =
//! undecided (search budget exhausted); `watch` exits with the code of
//! its final decision.
//!
//! `serve` turns the same delta-stream loop into a daemon (see
//! [`bagcons_serve`]): clients speak a line protocol over TCP or a unix
//! socket (`open`, delta lines, `batch`…`end`, `check`, `sync`,
//! `commit`, …), readers share immutable dataset generations, and a
//! writer publishes the next generation copy-on-write. SIGINT/SIGTERM
//! (or a client's `shutdown`) drain in-flight requests before exit.

use bagcons::report::{Render, ReportFormat};
use bagcons::session::{Decision, Session};
use std::process::ExitCode;

/// Default node budget for the cyclic branch's exact search.
const DEFAULT_BUDGET: u64 = 50_000_000;

struct Cli {
    cmd: String,
    files: Vec<String>,
    threads: Option<usize>,
    workers: usize,
    budget: u64,
    timeout: Option<std::time::Duration>,
    format: ReportFormat,
    // serve-only options
    listen: Option<String>,
    unix: Option<String>,
    name: String,
    worker_budget: Option<usize>,
    max_connections: Option<usize>,
    data_dir: Option<String>,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // The hidden `worker` subcommand is the child half of `--workers`:
    // a coordinator owns both pipe ends, so it takes no options and
    // bypasses argument parsing entirely (see bagcons_dist::worker).
    if args.first().map(String::as_str) == Some("worker") {
        std::process::exit(bagcons_dist::worker::run_stdio());
    }
    let cli = match parse_args(&args) {
        Ok(cli) => cli,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}");
            }
            return usage();
        }
    };

    // serve builds its own sessions (one per connection, via the
    // daemon's shared loader), so it branches before the CLI session;
    // snapshot subcommands manage files, not decisions.
    if cli.cmd == "serve" {
        return cmd_serve(&cli);
    }
    if cli.cmd == "snapshot" {
        return cmd_snapshot(&cli);
    }

    let mut builder = Session::builder().budget(cli.budget).workers(cli.workers);
    if let Some(threads) = cli.threads {
        builder = builder.threads(threads);
    }
    if let Some(timeout) = cli.timeout {
        builder = builder.deadline(timeout);
    }
    let mut session = match builder.build() {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };

    // One typed loading path for every file argument: text bags parse
    // through the session interner and seal; snapshot files (detected
    // by magic bytes) decode directly, possibly several bags per file.
    let mut bags = Vec::new();
    for path in &cli.files {
        match session.load_path(path) {
            Ok(loaded) => bags.extend(loaded),
            Err(e) => {
                eprintln!("error: {path}: {e}");
                return ExitCode::from(2);
            }
        }
    }
    if cli.cmd == "watch" {
        // watch owns the bags: the stream mutates them delta by delta.
        return cmd_watch(&session, bags, cli.format);
    }
    let refs: Vec<&bagcons_core::Bag> = bags.iter().collect();

    match cli.cmd.as_str() {
        "check" => cmd_check(&session, &refs, cli.format),
        "witness" => cmd_witness(&session, &refs, cli.format),
        "diagnose" => cmd_diagnose(&session, &refs, cli.format),
        "pairwise" => cmd_pairwise(&session, &refs, cli.format),
        "schema" => cmd_schema(&session, &refs, cli.format),
        "counterexample" => cmd_counterexample(&session, &refs, cli.format),
        other => {
            eprintln!("error: unknown command {other:?}");
            usage()
        }
    }
}

fn parse_args(args: &[String]) -> Result<Cli, String> {
    let mut positional: Vec<String> = Vec::new();
    let mut threads = None;
    let mut workers = 0usize;
    let mut budget = DEFAULT_BUDGET;
    let mut timeout = None;
    let mut format = ReportFormat::Text;
    let mut listen = None;
    let mut unix = None;
    let mut name = "default".to_string();
    let mut worker_budget = None;
    let mut max_connections = None;
    let mut data_dir = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let (flag, inline) = match arg.split_once('=') {
            Some((f, v)) if f.starts_with("--") => (f, Some(v.to_string())),
            _ => (arg.as_str(), None),
        };
        let value = |it: &mut std::slice::Iter<String>| -> Result<String, String> {
            match inline.clone() {
                Some(v) => Ok(v),
                None => it
                    .next()
                    .cloned()
                    .ok_or_else(|| format!("{flag} needs a value")),
            }
        };
        match flag {
            "--threads" => {
                threads = Some(
                    value(&mut it)?
                        .parse::<usize>()
                        .map_err(|_| "--threads expects an unsigned integer".to_string())?,
                );
            }
            "--workers" => {
                workers = value(&mut it)?
                    .parse::<usize>()
                    .map_err(|_| "--workers expects an unsigned integer".to_string())?;
            }
            "--budget" => {
                budget = value(&mut it)?
                    .parse::<u64>()
                    .map_err(|_| "--budget expects an unsigned integer".to_string())?;
            }
            "--timeout" => {
                let ms = value(&mut it)?
                    .parse::<u64>()
                    .map_err(|_| "--timeout expects milliseconds".to_string())?;
                timeout = Some(std::time::Duration::from_millis(ms));
            }
            "--format" => {
                format = value(&mut it)?.parse::<ReportFormat>()?;
            }
            "--listen" => listen = Some(value(&mut it)?),
            "--unix" => unix = Some(value(&mut it)?),
            "--name" => name = value(&mut it)?,
            "--worker-budget" => {
                worker_budget = Some(
                    value(&mut it)?
                        .parse::<usize>()
                        .map_err(|_| "--worker-budget expects an unsigned integer".to_string())?,
                );
            }
            "--max-connections" => {
                max_connections =
                    Some(value(&mut it)?.parse::<usize>().map_err(|_| {
                        "--max-connections expects an unsigned integer".to_string()
                    })?);
            }
            "--data-dir" => data_dir = Some(value(&mut it)?),
            f if f.starts_with("--") => return Err(format!("unknown option {f}")),
            _ => positional.push(arg.clone()),
        }
    }
    let mut positional = positional.into_iter();
    let cmd = positional.next().ok_or(String::new())?;
    let files: Vec<String> = positional.collect();
    // serve can start with an empty registry (clients `load` at runtime);
    // every other command needs at least one bag file.
    if files.is_empty() && cmd != "serve" {
        return Err(String::new());
    }
    Ok(Cli {
        cmd,
        files,
        threads,
        workers,
        budget,
        timeout,
        format,
        listen,
        unix,
        name,
        worker_budget,
        max_connections,
        data_dir,
    })
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: bagcons <check|witness|diagnose|pairwise|schema|counterexample|watch|serve|snapshot> \
         [--threads N] [--workers N] [--budget N] [--timeout MS] [--format text|json] <FILE>...\n\
         --workers N distributes the pairwise screen across N `bagcons worker`\n\
         child processes (check/serve; 0 = in-process, worker death degrades\n\
         to local execution without changing the decision).\n\
         FILEs hold bags in tabular text form (`A B #` header, `1 2 : 3` rows) or\n\
         binary snapshots written by `bagcons snapshot save` (auto-detected).\n\
         watch reads `<bag-index> <values...> : <±delta>` lines from stdin and\n\
         re-emits a decision per delta (incremental re-check; `: +1` default);\n\
         `batch` ... `end` groups deltas into one atomic update.\n\
         serve hosts datasets over TCP/unix sockets ([--listen ADDR] [--unix PATH]\n\
         [--name NAME] [--worker-budget N] [--max-connections N] [--data-dir DIR]);\n\
         FILEs, if any, are preloaded as dataset NAME.\n\
         snapshot save <OUT> <FILE>... | snapshot info <FILE> | snapshot verify <FILE>."
    );
    ExitCode::from(2)
}

/// Prints a rendering, newline-terminating exactly once.
fn emit(rendered: &str) {
    if rendered.ends_with('\n') {
        print!("{rendered}");
    } else {
        println!("{rendered}");
    }
}

fn fail(e: impl std::fmt::Display) -> ExitCode {
    eprintln!("error: {e}");
    ExitCode::from(2)
}

fn cmd_check(session: &Session, refs: &[&bagcons_core::Bag], format: ReportFormat) -> ExitCode {
    // With `--workers N` the pairwise screen runs across worker
    // processes; the session assembles the outcome either way, so the
    // rendering (and the exit-code contract) is identical.
    let checked = if session.workers() > 0 {
        let cfg = bagcons_dist::ClusterConfig::from_session(session);
        bagcons_dist::check(session, refs, &cfg).map(|dist| dist.outcome)
    } else {
        session.check(refs)
    };
    match checked {
        Ok(outcome) => {
            emit(&outcome.render(format, session.names()));
            ExitCode::from(outcome.decision.exit_code())
        }
        Err(e) => fail(e),
    }
}

fn cmd_witness(session: &Session, refs: &[&bagcons_core::Bag], format: ReportFormat) -> ExitCode {
    match session.witness(refs) {
        Ok(outcome) => {
            let code = outcome.check.decision.exit_code();
            match (format, outcome.check.decision) {
                // legacy text behavior: failures explain themselves on
                // stderr so stdout stays parseable-bag-or-empty
                (ReportFormat::Text, Decision::Consistent) => emit(&outcome.text(session.names())),
                (ReportFormat::Text, _) => eprintln!("{}", outcome.text(session.names())),
                (ReportFormat::Json, _) => emit(&outcome.json(session.names())),
            }
            ExitCode::from(code)
        }
        Err(e) => fail(e),
    }
}

fn cmd_diagnose(session: &Session, refs: &[&bagcons_core::Bag], format: ReportFormat) -> ExitCode {
    match session.diagnose(refs) {
        Ok(outcome) => {
            emit(&outcome.render(format, session.names()));
            ExitCode::from(u8::from(!outcome.diagnosis.is_pairwise_consistent()))
        }
        Err(e) => fail(e),
    }
}

fn cmd_pairwise(session: &Session, refs: &[&bagcons_core::Bag], format: ReportFormat) -> ExitCode {
    let [r, s] = refs else {
        eprintln!("error: pairwise needs exactly two bag files");
        return ExitCode::from(2);
    };
    match session.pairwise_report(r, s) {
        Ok(outcome) => {
            emit(&outcome.render(format, session.names()));
            ExitCode::from(u8::from(!outcome.report.marginals_equal))
        }
        Err(e) => fail(e),
    }
}

fn cmd_schema(session: &Session, refs: &[&bagcons_core::Bag], format: ReportFormat) -> ExitCode {
    let outcome = session.schema_report(refs);
    emit(&outcome.render(format, session.names()));
    ExitCode::SUCCESS
}

fn cmd_watch(session: &Session, bags: Vec<bagcons_core::Bag>, format: ReportFormat) -> ExitCode {
    use std::io::BufRead;

    let mut stream = match session.open_stream(bags) {
        Ok(s) => s,
        Err(e) => return fail(e),
    };
    // One opening line so consumers know the starting state, then one
    // line per delta.
    match format {
        ReportFormat::Text => println!(
            "open: {} ({} bags, {} branch)",
            stream.decision().as_str(),
            stream.bags().len(),
            stream.branch().as_str()
        ),
        ReportFormat::Json => println!(
            "{{\"report\":\"open\",\"decision\":\"{}\",\"branch\":\"{}\",\"bags\":{}}}",
            stream.decision().as_str(),
            stream.branch().as_str(),
            stream.bags().len()
        ),
    }
    let stdin = std::io::stdin();
    // `batch` ... `end` groups deltas into one atomic update: pair
    // repair (and the decision) run once on `end` instead of per line.
    let mut batch: Option<Vec<(usize, bagcons_core::DeltaSet)>> = None;
    for (i, line) in stdin.lock().lines().enumerate() {
        let line_no = i + 1;
        let line = match line {
            Ok(l) => l,
            Err(e) => return fail(format!("stdin: {e}")),
        };
        match line.split('%').next().unwrap_or("").trim() {
            "batch" => {
                if batch.is_some() {
                    return fail(format!(
                        "stdin line {line_no}: batch already open (finish it with `end`)"
                    ));
                }
                batch = Some(Vec::new());
                continue;
            }
            "end" => {
                let Some(edits) = batch.take() else {
                    return fail(format!(
                        "stdin line {line_no}: no open batch (start one with `batch`)"
                    ));
                };
                match stream.update_batch(&edits) {
                    Ok(outcome) => emit(&outcome.render(format, session.names())),
                    Err(e) => return fail(format!("stdin line {line_no}: {e}")),
                }
                continue;
            }
            _ => {}
        }
        // Shared grammar with the daemon and the worker transport:
        // parsing, the range check, and DeltaSet assembly all live in
        // bagcons::protocol, so every front end rejects the same input
        // with the same words.
        let (index, set) = match bagcons::protocol::parse_delta_edit(&line, line_no, stream.bags())
        {
            Ok(Some(edit)) => edit,
            Ok(None) => continue,
            Err(e) => return fail(format!("stdin line {line_no}: {e}")),
        };
        if let Some(edits) = batch.as_mut() {
            edits.push((index, set));
            continue;
        }
        match stream.update(index, &set) {
            Ok(outcome) => emit(&outcome.render(format, session.names())),
            Err(e) => return fail(format!("stdin line {line_no}: {e}")),
        }
    }
    if batch.is_some() {
        return fail("stdin ended with an open batch (missing `end`)");
    }
    ExitCode::from(stream.decision().exit_code())
}

fn cmd_serve(cli: &Cli) -> ExitCode {
    let mut opts = bagcons_serve::ServeOptions::default();
    if let Some(addr) = &cli.listen {
        opts.tcp = Some(addr.clone());
    } else if cli.unix.is_some() {
        // --unix without --listen means unix-only.
        opts.tcp = None;
    }
    opts.unix = cli.unix.as_ref().map(std::path::PathBuf::from);
    opts.threads = cli.threads;
    opts.workers = cli.workers;
    opts.budget = Some(cli.budget);
    opts.timeout = cli.timeout;
    opts.worker_budget = cli.worker_budget;
    if let Some(cap) = cli.max_connections {
        opts.max_connections = cap;
    }
    opts.data_dir = cli.data_dir.as_ref().map(std::path::PathBuf::from);
    let server = match bagcons_serve::Server::bind(opts) {
        Ok(s) => s,
        Err(e) => return fail(e),
    };
    if !cli.files.is_empty() {
        match server.preload(&cli.name, &cli.files) {
            Ok(bags) => eprintln!("loaded dataset {:?} ({bags} bags)", cli.name),
            Err(e) => return fail(e),
        }
    }
    // SIGINT/SIGTERM request the same graceful drain as the `shutdown`
    // command: stop accepting, finish in-flight requests, then exit.
    #[cfg(unix)]
    bagcons_serve::server::install_signal_handlers();
    if let Some(addr) = server.local_addr() {
        println!("listening on {addr}");
    }
    if let Some(path) = &cli.unix {
        println!("listening on unix:{path}");
    }
    // Piped stdout is block-buffered: supervisors wait for this line to
    // learn the bound port, so push it out before blocking in run().
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    match server.run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => fail(e),
    }
}

/// `bagcons snapshot save|info|verify`: write, describe, or fully
/// validate a binary snapshot. Lives outside the decision session —
/// `save` builds its own loader session; `info`/`verify` never build
/// one.
fn cmd_snapshot(cli: &Cli) -> ExitCode {
    let Some((action, rest)) = cli.files.split_first() else {
        eprintln!("error: snapshot needs an action (save|info|verify)");
        return ExitCode::from(2);
    };
    match action.as_str() {
        "save" => {
            let Some((out, inputs)) = rest.split_first() else {
                eprintln!("error: snapshot save needs an output file and at least one input");
                return ExitCode::from(2);
            };
            if inputs.is_empty() {
                eprintln!("error: snapshot save needs at least one input file");
                return ExitCode::from(2);
            }
            let mut builder = Session::builder().budget(cli.budget);
            if let Some(threads) = cli.threads {
                builder = builder.threads(threads);
            }
            let mut session = match builder.build() {
                Ok(s) => s,
                Err(e) => return fail(e),
            };
            let mut bags = Vec::new();
            for path in inputs {
                match session.load_path(path) {
                    Ok(loaded) => bags.extend(loaded),
                    Err(e) => {
                        eprintln!("error: {path}: {e}");
                        return ExitCode::from(2);
                    }
                }
            }
            let refs: Vec<&bagcons_core::Bag> = bags.iter().collect();
            if let Err(e) = session.write_snapshot(out, &refs) {
                return fail(format!("{out}: {e}"));
            }
            eprintln!("wrote {out} ({} bags)", bags.len());
            ExitCode::SUCCESS
        }
        "info" | "verify" => {
            let [file] = rest else {
                eprintln!("error: snapshot {action} needs exactly one file");
                return ExitCode::from(2);
            };
            let bytes = match std::fs::read(file) {
                Ok(b) => b,
                Err(e) => return fail(format!("cannot read {file}: {e}")),
            };
            let result = if action == "verify" {
                bagcons_snap::verify(&bytes)
            } else {
                bagcons_snap::inspect(&bytes)
            };
            let info = match result {
                Ok(info) => info,
                Err(e) => {
                    // Corruption is a "no" answer, not a usage error.
                    eprintln!("invalid snapshot {file}: {e}");
                    return ExitCode::from(1);
                }
            };
            match cli.format {
                ReportFormat::Text => {
                    println!(
                        "snapshot {file}: version={} bytes={} bags={} pairs={} flows={}{}",
                        info.version,
                        info.file_len,
                        info.bag_count,
                        info.pair_count,
                        if info.has_flows { "yes" } else { "no" },
                        if action == "verify" {
                            " verified=yes"
                        } else {
                            ""
                        },
                    );
                    for s in &info.sections {
                        println!(
                            "  section {} index={} offset={} len={} hash={:016x}",
                            s.name, s.index, s.offset, s.len, s.hash
                        );
                    }
                }
                ReportFormat::Json => {
                    use bagcons::report::Json;
                    let mut j = Json::new();
                    j.begin_object();
                    j.field_str("report", "snapshot");
                    j.field_str("action", action);
                    j.field_str("file", file);
                    j.field_u64("version", u64::from(info.version));
                    j.field_u64("bytes", info.file_len);
                    j.field_u64("bags", u64::from(info.bag_count));
                    j.field_u64("pairs", u64::from(info.pair_count));
                    j.field_bool("flows", info.has_flows);
                    j.field_bool("verified", action == "verify");
                    j.key("sections");
                    j.begin_array();
                    for s in &info.sections {
                        j.begin_object();
                        j.field_str("kind", s.name);
                        j.field_u64("index", u64::from(s.index));
                        j.field_u64("offset", s.offset);
                        j.field_u64("len", s.len);
                        j.field_str("hash", &format!("{:016x}", s.hash));
                        j.end_object();
                    }
                    j.end_array();
                    j.end_object();
                    println!("{}", j.finish());
                }
            }
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("error: unknown snapshot action {other:?} (save|info|verify)");
            ExitCode::from(2)
        }
    }
}

fn cmd_counterexample(
    session: &Session,
    refs: &[&bagcons_core::Bag],
    format: ReportFormat,
) -> ExitCode {
    match session.counterexample(refs) {
        Ok(outcome) => {
            emit(&outcome.render(format, session.names()));
            ExitCode::from(u8::from(outcome.family.is_none()))
        }
        Err(e) => fail(e),
    }
}
