//! `bagcons` — command-line interface to the bag-consistency library.
//!
//! ```text
//! bagcons check <FILE>...          decide global consistency (dichotomy)
//! bagcons witness <FILE>...        print a witness bag, if one exists
//! bagcons diagnose <FILE>...       explain inconsistencies tuple-by-tuple
//! bagcons schema <FILE>...         analyze the schema hypergraph
//! bagcons counterexample <FILE>... emit a pairwise-consistent but
//!                                  globally-inconsistent family over the
//!                                  same (cyclic) schema
//! ```
//!
//! Each FILE holds one bag in the tabular text format of
//! [`bagcons_core::io`] (header `A B #`, rows `1 2 : 3`,
//! `%`-comments). Exit codes: 0 = yes/ok, 1 = no, 2 = usage or input
//! error, 3 = undecided (search budget exhausted).

use bagcons::diagnose::{diagnose, Diagnosis};
use bagcons::dichotomy::{decide_global_consistency_exec, GcpbOutcome};
use bagcons::lifting::pairwise_consistent_globally_inconsistent;
use bagcons_core::io::{parse_bag_with, write_bag, NameInterner};
use bagcons_core::{AttrNames, Bag, ExecConfig};
use bagcons_hypergraph::{
    find_obstruction, is_acyclic, is_chordal, is_conformal, rip_order, Hypergraph, ObstructionKind,
};
use bagcons_lp::ilp::SolverConfig;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, files)) = args.split_first() else {
        return usage();
    };
    if files.is_empty() {
        return usage();
    }
    let mut bags = Vec::new();
    let mut interner = NameInterner::new();
    for path in files {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: cannot read {path}: {e}");
                return ExitCode::from(2);
            }
        };
        match parse_bag_with(&text, &mut interner) {
            Ok(bag) => bags.push(bag),
            Err(e) => {
                eprintln!("error: {path}: {e}");
                return ExitCode::from(2);
            }
        }
    }
    let names = interner.names().clone();
    let refs: Vec<&Bag> = bags.iter().collect();
    match cmd.as_str() {
        "check" => cmd_check(&refs),
        "witness" => cmd_witness(&refs, &names),
        "diagnose" => cmd_diagnose(&refs, &names),
        "schema" => cmd_schema(&refs, &names),
        "counterexample" => cmd_counterexample(&refs, &names),
        other => {
            eprintln!("error: unknown command {other:?}");
            usage()
        }
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: bagcons <check|witness|diagnose|schema|counterexample> <FILE>...\n\
         FILEs hold bags in tabular text form (`A B #` header, `1 2 : 3` rows)."
    );
    ExitCode::from(2)
}

/// Renders a schema with display names, e.g. `{Origin, Dest}`.
fn pretty_schema(s: &bagcons_core::Schema, names: &AttrNames) -> String {
    let cells: Vec<String> = s.iter().map(|a| names.name(a)).collect();
    format!("{{{}}}", cells.join(", "))
}

fn solver() -> SolverConfig {
    SolverConfig {
        node_limit: Some(50_000_000),
        ..Default::default()
    }
}

fn cmd_check(refs: &[&Bag]) -> ExitCode {
    // One worker per available core; small inputs stay sequential via
    // the ExecConfig fallback, and results are thread-count invariant.
    match decide_global_consistency_exec(refs, &solver(), &ExecConfig::default()) {
        Ok(rep) => {
            let path = if rep.acyclic {
                "acyclic/polynomial"
            } else {
                "cyclic/search"
            };
            match rep.outcome {
                GcpbOutcome::Consistent(_) => {
                    println!("globally consistent ({path}, {} nodes)", rep.search_nodes);
                    ExitCode::SUCCESS
                }
                GcpbOutcome::Inconsistent => {
                    println!(
                        "NOT globally consistent ({path}, {} nodes)",
                        rep.search_nodes
                    );
                    ExitCode::from(1)
                }
                GcpbOutcome::Unknown => {
                    println!(
                        "undecided: search budget exhausted ({} nodes)",
                        rep.search_nodes
                    );
                    ExitCode::from(3)
                }
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}

fn cmd_witness(refs: &[&Bag], names: &AttrNames) -> ExitCode {
    match decide_global_consistency_exec(refs, &solver(), &ExecConfig::default()) {
        Ok(rep) => match rep.outcome {
            GcpbOutcome::Consistent(w) => {
                print!("{}", write_bag(&w, names));
                ExitCode::SUCCESS
            }
            GcpbOutcome::Inconsistent => {
                eprintln!("no witness: the bags are not globally consistent");
                ExitCode::from(1)
            }
            GcpbOutcome::Unknown => {
                eprintln!("undecided: search budget exhausted");
                ExitCode::from(3)
            }
        },
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}

fn cmd_diagnose(refs: &[&Bag], names: &AttrNames) -> ExitCode {
    match diagnose(refs, 32) {
        Ok(Diagnosis::PairwiseConsistent {
            acyclic,
            obstruction,
        }) => {
            println!("pairwise consistent");
            if acyclic {
                println!("schema is acyclic ⇒ globally consistent (Theorem 2)");
                ExitCode::SUCCESS
            } else {
                println!(
                    "schema is CYCLIC: pairwise consistency does not imply global \
                     consistency here — run `bagcons check` for the full decision"
                );
                if let Some(ob) = obstruction {
                    let kind = match ob.kind {
                        ObstructionKind::Cycle(n) => format!("C{n} (chordless cycle)"),
                        ObstructionKind::CliqueComplement(n) => {
                            format!("H{n} (uncovered clique)")
                        }
                    };
                    println!(
                        "minimal obstruction: {kind} on vertices {}",
                        pretty_schema(&ob.w, names)
                    );
                }
                ExitCode::SUCCESS
            }
        }
        Ok(Diagnosis::PairwiseInconsistent(ms)) => {
            println!("pairwise INCONSISTENT — {} mismatch(es):", ms.len());
            for m in ms {
                println!("  {m}");
            }
            ExitCode::from(1)
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}

fn cmd_schema(refs: &[&Bag], names: &AttrNames) -> ExitCode {
    let h = Hypergraph::from_edges(refs.iter().map(|b| b.schema().clone()));
    let edges: Vec<String> = h.edges().iter().map(|e| pretty_schema(e, names)).collect();
    println!("hyperedges: {}", edges.join(", "));
    println!("vertices: {}  edges: {}", h.num_vertices(), h.num_edges());
    let acyclic = is_acyclic(&h);
    println!("acyclic:   {acyclic}");
    println!("chordal:   {}", is_chordal(&h));
    println!("conformal: {}", is_conformal(&h));
    if let Some(order) = rip_order(&h) {
        let pretty: Vec<String> = order.iter().map(|s| pretty_schema(s, names)).collect();
        println!("running-intersection order: {}", pretty.join(" → "));
    }
    if let Some(ob) = find_obstruction(&h) {
        let kind = match ob.kind {
            ObstructionKind::Cycle(n) => format!("C{n}"),
            ObstructionKind::CliqueComplement(n) => format!("H{n}"),
        };
        println!(
            "minimal obstruction: {kind} on {} ({} safe deletions)",
            pretty_schema(&ob.w, names),
            ob.deletions.len()
        );
    }
    ExitCode::SUCCESS
}

fn cmd_counterexample(refs: &[&Bag], names: &AttrNames) -> ExitCode {
    let h = Hypergraph::from_edges(refs.iter().map(|b| b.schema().clone()));
    match pairwise_consistent_globally_inconsistent(&h) {
        Ok(Some(bags)) => {
            let edges: Vec<String> = h.edges().iter().map(|e| pretty_schema(e, names)).collect();
            println!(
                "% pairwise consistent but globally inconsistent over [{}]\n\
                 % one bag per hyperedge, each preceded by a marker line",
                edges.join(", ")
            );
            for bag in bags {
                println!("%% ---");
                print!("{}", write_bag(&bag, names));
            }
            ExitCode::SUCCESS
        }
        Ok(None) => {
            println!("schema is acyclic: no such family exists (local-to-global holds, Theorem 2)");
            ExitCode::from(1)
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}
