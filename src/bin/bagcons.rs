//! `bagcons` — command-line interface to the bag-consistency library,
//! a thin shell around [`bagcons::session::Session`].
//!
//! ```text
//! bagcons check [opts] <FILE>...          decide global consistency (dichotomy)
//! bagcons witness [opts] <FILE>...        print a witness bag, if one exists
//! bagcons diagnose [opts] <FILE>...       explain inconsistencies tuple-by-tuple
//! bagcons pairwise [opts] <FILE> <FILE>   cross-validate Lemma 2's five tests
//! bagcons schema [opts] <FILE>...         analyze the schema hypergraph
//! bagcons counterexample [opts] <FILE>... emit a pairwise-consistent but
//!                                         globally-inconsistent family over the
//!                                         same (cyclic) schema
//! bagcons watch [opts] <FILE>...          incremental mode: read multiplicity
//!                                         deltas from stdin, one per line, and
//!                                         re-emit a decision per delta
//!
//! options:
//!   --threads N         worker threads (default: one per core, capped at 8)
//!   --budget N          node budget for the cyclic exact search
//!                       (default 50000000)
//!   --timeout MS        wall-clock budget in milliseconds per operation
//!                       (per delta under `watch`); on expiry the decision
//!                       degrades to `unknown` (exit 3) instead of hanging
//!   --format text|json  output format (default text)
//! ```
//!
//! Each FILE holds one bag in the tabular text format of
//! [`bagcons_core::io`] (header `A B #`, rows `1 2 : 3`,
//! `%`-comments). `watch` additionally reads delta lines
//! `<bag-index> <values...> : <±delta>` from stdin (0-based index in
//! FILE order, values in the bag's schema order, `: delta` defaulting
//! to `+1`) and re-decides incrementally after each one: cached
//! per-pair flow networks are repaired in place for support-preserving
//! edits instead of rebuilding from scratch. Exit codes: 0 = yes/ok,
//! 1 = no, 2 = usage or input error, 3 = undecided (search budget
//! exhausted); `watch` exits with the code of its final decision.

use bagcons::report::{Render, ReportFormat};
use bagcons::session::{Decision, Session};
use std::process::ExitCode;

/// Default node budget for the cyclic branch's exact search.
const DEFAULT_BUDGET: u64 = 50_000_000;

struct Cli {
    cmd: String,
    files: Vec<String>,
    threads: Option<usize>,
    budget: u64,
    timeout: Option<std::time::Duration>,
    format: ReportFormat,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_args(&args) {
        Ok(cli) => cli,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}");
            }
            return usage();
        }
    };

    let mut builder = Session::builder().budget(cli.budget);
    if let Some(threads) = cli.threads {
        builder = builder.threads(threads);
    }
    if let Some(timeout) = cli.timeout {
        builder = builder.deadline(timeout);
    }
    let mut session = match builder.build() {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };

    let mut bags = Vec::new();
    for path in &cli.files {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: cannot read {path}: {e}");
                return ExitCode::from(2);
            }
        };
        match session.load_bag(&text) {
            Ok(bag) => bags.push(bag),
            Err(e) => {
                eprintln!("error: {path}: {e}");
                return ExitCode::from(2);
            }
        }
    }
    if cli.cmd == "watch" {
        // watch owns the bags: the stream mutates them delta by delta.
        return cmd_watch(&session, bags, cli.format);
    }
    let refs: Vec<&bagcons_core::Bag> = bags.iter().collect();

    match cli.cmd.as_str() {
        "check" => cmd_check(&session, &refs, cli.format),
        "witness" => cmd_witness(&session, &refs, cli.format),
        "diagnose" => cmd_diagnose(&session, &refs, cli.format),
        "pairwise" => cmd_pairwise(&session, &refs, cli.format),
        "schema" => cmd_schema(&session, &refs, cli.format),
        "counterexample" => cmd_counterexample(&session, &refs, cli.format),
        other => {
            eprintln!("error: unknown command {other:?}");
            usage()
        }
    }
}

fn parse_args(args: &[String]) -> Result<Cli, String> {
    let mut positional: Vec<String> = Vec::new();
    let mut threads = None;
    let mut budget = DEFAULT_BUDGET;
    let mut timeout = None;
    let mut format = ReportFormat::Text;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let (flag, inline) = match arg.split_once('=') {
            Some((f, v)) if f.starts_with("--") => (f, Some(v.to_string())),
            _ => (arg.as_str(), None),
        };
        let value = |it: &mut std::slice::Iter<String>| -> Result<String, String> {
            match inline.clone() {
                Some(v) => Ok(v),
                None => it
                    .next()
                    .cloned()
                    .ok_or_else(|| format!("{flag} needs a value")),
            }
        };
        match flag {
            "--threads" => {
                threads = Some(
                    value(&mut it)?
                        .parse::<usize>()
                        .map_err(|_| "--threads expects an unsigned integer".to_string())?,
                );
            }
            "--budget" => {
                budget = value(&mut it)?
                    .parse::<u64>()
                    .map_err(|_| "--budget expects an unsigned integer".to_string())?;
            }
            "--timeout" => {
                let ms = value(&mut it)?
                    .parse::<u64>()
                    .map_err(|_| "--timeout expects milliseconds".to_string())?;
                timeout = Some(std::time::Duration::from_millis(ms));
            }
            "--format" => {
                format = value(&mut it)?.parse::<ReportFormat>()?;
            }
            f if f.starts_with("--") => return Err(format!("unknown option {f}")),
            _ => positional.push(arg.clone()),
        }
    }
    let mut positional = positional.into_iter();
    let cmd = positional.next().ok_or(String::new())?;
    let files: Vec<String> = positional.collect();
    if files.is_empty() {
        return Err(String::new());
    }
    Ok(Cli {
        cmd,
        files,
        threads,
        budget,
        timeout,
        format,
    })
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: bagcons <check|witness|diagnose|pairwise|schema|counterexample|watch> \
         [--threads N] [--budget N] [--timeout MS] [--format text|json] <FILE>...\n\
         FILEs hold bags in tabular text form (`A B #` header, `1 2 : 3` rows).\n\
         watch reads `<bag-index> <values...> : <±delta>` lines from stdin and\n\
         re-emits a decision per delta (incremental re-check; `: +1` default)."
    );
    ExitCode::from(2)
}

/// Prints a rendering, newline-terminating exactly once.
fn emit(rendered: &str) {
    if rendered.ends_with('\n') {
        print!("{rendered}");
    } else {
        println!("{rendered}");
    }
}

fn fail(e: impl std::fmt::Display) -> ExitCode {
    eprintln!("error: {e}");
    ExitCode::from(2)
}

fn cmd_check(session: &Session, refs: &[&bagcons_core::Bag], format: ReportFormat) -> ExitCode {
    match session.check(refs) {
        Ok(outcome) => {
            emit(&outcome.render(format, session.names()));
            ExitCode::from(outcome.decision.exit_code())
        }
        Err(e) => fail(e),
    }
}

fn cmd_witness(session: &Session, refs: &[&bagcons_core::Bag], format: ReportFormat) -> ExitCode {
    match session.witness(refs) {
        Ok(outcome) => {
            let code = outcome.check.decision.exit_code();
            match (format, outcome.check.decision) {
                // legacy text behavior: failures explain themselves on
                // stderr so stdout stays parseable-bag-or-empty
                (ReportFormat::Text, Decision::Consistent) => emit(&outcome.text(session.names())),
                (ReportFormat::Text, _) => eprintln!("{}", outcome.text(session.names())),
                (ReportFormat::Json, _) => emit(&outcome.json(session.names())),
            }
            ExitCode::from(code)
        }
        Err(e) => fail(e),
    }
}

fn cmd_diagnose(session: &Session, refs: &[&bagcons_core::Bag], format: ReportFormat) -> ExitCode {
    match session.diagnose(refs) {
        Ok(outcome) => {
            emit(&outcome.render(format, session.names()));
            ExitCode::from(u8::from(!outcome.diagnosis.is_pairwise_consistent()))
        }
        Err(e) => fail(e),
    }
}

fn cmd_pairwise(session: &Session, refs: &[&bagcons_core::Bag], format: ReportFormat) -> ExitCode {
    let [r, s] = refs else {
        eprintln!("error: pairwise needs exactly two bag files");
        return ExitCode::from(2);
    };
    match session.pairwise_report(r, s) {
        Ok(outcome) => {
            emit(&outcome.render(format, session.names()));
            ExitCode::from(u8::from(!outcome.report.marginals_equal))
        }
        Err(e) => fail(e),
    }
}

fn cmd_schema(session: &Session, refs: &[&bagcons_core::Bag], format: ReportFormat) -> ExitCode {
    let outcome = session.schema_report(refs);
    emit(&outcome.render(format, session.names()));
    ExitCode::SUCCESS
}

fn cmd_watch(session: &Session, bags: Vec<bagcons_core::Bag>, format: ReportFormat) -> ExitCode {
    use std::io::BufRead;

    let mut stream = match session.open_stream(bags) {
        Ok(s) => s,
        Err(e) => return fail(e),
    };
    // One opening line so consumers know the starting state, then one
    // line per delta.
    match format {
        ReportFormat::Text => println!(
            "open: {} ({} bags, {} branch)",
            stream.decision().as_str(),
            stream.bags().len(),
            stream.branch().as_str()
        ),
        ReportFormat::Json => println!(
            "{{\"report\":\"open\",\"decision\":\"{}\",\"branch\":\"{}\",\"bags\":{}}}",
            stream.decision().as_str(),
            stream.branch().as_str(),
            stream.bags().len()
        ),
    }
    let stdin = std::io::stdin();
    for (i, line) in stdin.lock().lines().enumerate() {
        let line_no = i + 1;
        let line = match line {
            Ok(l) => l,
            Err(e) => return fail(format!("stdin: {e}")),
        };
        let (index, row, delta) = match bagcons_core::io::parse_delta_line(&line, line_no) {
            Ok(Some(parsed)) => parsed,
            Ok(None) => continue,
            Err(e) => return fail(format!("stdin: {e}")),
        };
        let Some(bag) = stream.bags().get(index) else {
            return fail(format!(
                "stdin line {line_no}: bag index {index} out of range (0..{})",
                stream.bags().len()
            ));
        };
        let mut set = bagcons_core::DeltaSet::new(bag.schema().clone());
        if let Err(e) = set.bump(row, delta) {
            return fail(format!("stdin line {line_no}: {e}"));
        }
        match stream.update(index, &set) {
            Ok(outcome) => emit(&outcome.render(format, session.names())),
            Err(e) => return fail(format!("stdin line {line_no}: {e}")),
        }
    }
    ExitCode::from(stream.decision().exit_code())
}

fn cmd_counterexample(
    session: &Session,
    refs: &[&bagcons_core::Bag],
    format: ReportFormat,
) -> ExitCode {
    match session.counterexample(refs) {
        Ok(outcome) => {
            emit(&outcome.render(format, session.names()));
            ExitCode::from(u8::from(outcome.family.is_none()))
        }
        Err(e) => fail(e),
    }
}
